"""Tests for the analyzer pipelines over synthetic sensor logs.

These tests build sensor observation logs directly from the defect
forgers -- the same wire-level behaviours the integration benches see
-- and check that each injected defect is recovered by name.
"""

import random
from dataclasses import dataclass, field
from typing import List

from repro.botnets.sality import protocol as sality_protocol
from repro.botnets.sality.protocol import Command
from repro.botnets.zeus import protocol as zeus_protocol
from repro.botnets.zeus.protocol import MessageType, ZeusDecodeError
from repro.core.anomaly import (
    SalityAnomalyAnalyzer,
    ZeusAnomalyAnalyzer,
)
from repro.core.anomaly.report import (
    SALITY_DEFECT_ROWS,
    ZEUS_DEFECT_ROWS,
    defect_matrix,
)
from repro.core.defects import (
    SalityDefectProfile,
    SalityForger,
    ZeusDefectProfile,
    ZeusForger,
)
from repro.core.sensor import ObservedSalityMessage, ObservedZeusMessage
from repro.net.address import parse_ip
from repro.sim.clock import MINUTE


@dataclass
class FakeSensor:
    node_id: str
    bot_id: bytes
    observations: List = field(default_factory=list)


def make_zeus_sensors(count=10, seed=0):
    rng = random.Random(seed)
    return [
        FakeSensor(node_id=f"s-{i}", bot_id=zeus_protocol.random_id(rng))
        for i in range(count)
    ]


def observe_zeus(sensor, wire, time, src_ip, src_port=5000):
    """Replicate ZeusSensor._observe for a raw encrypted message."""
    obs = ObservedZeusMessage(
        time=time, src_ip=src_ip, src_port=src_port, decrypt_ok=False
    )
    try:
        decoded = zeus_protocol.decrypt_message(wire, sensor.bot_id)
    except ZeusDecodeError:
        sensor.observations.append(obs)
        return
    obs.decrypt_ok = True
    obs.msg_type = decoded.msg_type
    obs.random_byte = decoded.random_byte
    obs.ttl = decoded.ttl
    obs.lop = len(decoded.padding)
    obs.session_id = decoded.session_id
    obs.source_id = decoded.source_id
    obs.padding = decoded.padding
    if decoded.msg_type == MessageType.PEER_LIST_REQUEST:
        obs.lookup_key = decoded.payload
    sensor.observations.append(obs)


def run_zeus_crawler_against(sensors, profile, crawler_ip, seed=1, interval=5.0, rounds=6):
    """Drive one synthetic crawler over every sensor."""
    forger = ZeusForger(profile, random.Random(seed))
    time = 0.0
    for round_index in range(rounds):
        for sensor in sensors:
            message = forger.build(
                MessageType.PEER_LIST_REQUEST,
                payload=forger.lookup_key(sensor.bot_id),
            )
            wire = forger.encrypt(message, sensor.bot_id)
            observe_zeus(sensor, wire, time, crawler_ip)
            time += interval
        if not profile.protocol_logic:
            # Interleave the other message types like a real bot.
            for sensor in sensors:
                message = forger.build(MessageType.VERSION_REQUEST)
                observe_zeus(sensor, forger.encrypt(message, sensor.bot_id), time, crawler_ip)
                time += interval
        if not profile.hard_hitter:
            time += 35 * MINUTE  # suspend between rounds


def add_normal_zeus_background(sensors, bot_count=30, seed=9):
    """Normal bots: each knows 1-2 sensors, polite cycle timing."""
    rng = random.Random(seed)
    for index in range(bot_count):
        ip = parse_ip("25.0.0.1") + index
        forger = ZeusForger(ZeusDefectProfile(name="bot"), random.Random(1000 + index))
        known = rng.sample(sensors, rng.randint(1, 2))
        time = rng.uniform(0, 60)
        for cycle in range(20):
            for sensor in known:
                mtype = MessageType.VERSION_REQUEST if cycle % 3 else MessageType.PEER_LIST_REQUEST
                payload = sensor.bot_id if mtype == MessageType.PEER_LIST_REQUEST else b""
                message = forger.build(mtype, payload=payload)
                observe_zeus(sensor, forger.encrypt(message, sensor.bot_id), time, ip)
            time += 30 * MINUTE * rng.uniform(0.9, 1.1)


CRAWLER_IP = parse_ip("99.0.0.1")


class TestZeusAnalyzer:
    def analyze_with_profile(self, profile, **crawler_kwargs):
        sensors = make_zeus_sensors()
        add_normal_zeus_background(sensors)
        run_zeus_crawler_against(sensors, profile, CRAWLER_IP, **crawler_kwargs)
        findings = ZeusAnomalyAnalyzer().analyze(sensors)
        by_ip = {f.ip: f for f in findings}
        assert CRAWLER_IP in by_ip, "crawler not among studied sources"
        return by_ip[CRAWLER_IP], findings

    def test_clean_crawler_shows_no_syntax_defects(self):
        finding, _ = self.analyze_with_profile(ZeusDefectProfile(name="clean"))
        syntax_defects = set(finding.defects) - {"hard_hitter", "protocol_logic"}
        assert syntax_defects == set()

    def test_each_defect_recovered(self):
        cases = {
            "rnd_range": dict(rnd_range=True),
            "ttl_range": dict(ttl_range=True),
            "lop_range": dict(lop_range=True),
            "session_range": dict(session_range=True),
            "session_entropy": dict(session_entropy=True),
            "random_source": dict(random_source=True),
            "source_entropy": dict(source_entropy=True),
            "abnormal_lookup": dict(abnormal_lookup=True),
            "protocol_logic": dict(protocol_logic=True),
            "encryption": dict(encryption=True),
            "hard_hitter": dict(hard_hitter=True),
        }
        for defect, kwargs in cases.items():
            profile = ZeusDefectProfile(name=defect, **kwargs)
            finding, _ = self.analyze_with_profile(profile)
            assert finding.has(defect), f"{defect} not recovered: {finding.defects}"

    def test_padding_entropy_recovered(self):
        # Needs padding present, so not combined with lop_range.
        profile = ZeusDefectProfile(name="pad", padding_entropy=True)
        finding, _ = self.analyze_with_profile(profile)
        assert finding.has("padding_entropy")

    def test_normal_bots_not_flagged(self):
        sensors = make_zeus_sensors()
        add_normal_zeus_background(sensors, bot_count=40)
        findings = ZeusAnomalyAnalyzer().analyze(sensors)
        defective = [f for f in findings if f.defects]
        assert defective == []

    def test_coverage_computed(self):
        finding, _ = self.analyze_with_profile(ZeusDefectProfile(name="clean"))
        assert finding.coverage == 1.0  # crawler visited every sensor

    def test_sparse_sources_excluded(self):
        sensors = make_zeus_sensors()
        run_zeus_crawler_against(
            sensors[:1], ZeusDefectProfile(name="tiny"), CRAWLER_IP, rounds=1
        )
        findings = ZeusAnomalyAnalyzer().analyze(sensors)
        assert CRAWLER_IP not in {f.ip for f in findings}

    def test_defect_matrix_shape(self):
        _, findings = self.analyze_with_profile(
            ZeusDefectProfile(name="x", rnd_range=True, hard_hitter=True)
        )
        matrix = defect_matrix(findings, ZEUS_DEFECT_ROWS)
        assert set(matrix) == set(ZEUS_DEFECT_ROWS)
        assert all(len(col) == len(findings) for col in matrix.values())


def make_sality_sensors(count=10, seed=0):
    rng = random.Random(seed)
    return [
        FakeSensor(node_id=f"s-{i}", bot_id=rng.getrandbits(32).to_bytes(4, "big"))
        for i in range(count)
    ]


def observe_sality(sensor, wire, time, src_ip, src_port):
    obs = ObservedSalityMessage(
        time=time, src_ip=src_ip, src_port=src_port, decode_ok=False
    )
    try:
        decoded = sality_protocol.decode_packet(wire)
    except sality_protocol.SalityDecodeError:
        sensor.observations.append(obs)
        return
    obs.decode_ok = True
    obs.command = decoded.command
    obs.bot_id = decoded.bot_id
    obs.minor_version = decoded.minor_version
    obs.padding = decoded.padding
    sensor.observations.append(obs)


def run_sality_crawler_against(sensors, profile, crawler_ip, seed=1, rounds=6):
    forger = SalityForger(profile, random.Random(seed))
    rng = random.Random(seed + 1)
    time = 0.0
    fixed_port = 7777
    for round_index in range(rounds):
        for sensor in sensors:
            port = fixed_port if profile.port_range else rng.randrange(10240, 65536)
            message = forger.build(Command.PEER_REQUEST)
            observe_sality(sensor, forger.encode(message), time, crawler_ip, port)
            time += 2.0
        if not profile.protocol_logic:
            for sensor in sensors:
                port = fixed_port if profile.port_range else rng.randrange(10240, 65536)
                message = forger.build(Command.URLPACK_REQUEST, payload=(1).to_bytes(4, "big"))
                observe_sality(sensor, forger.encode(message), time, crawler_ip, port)
                time += 2.0
        if not profile.hard_hitter:
            time += 45 * MINUTE


def add_normal_sality_background(sensors, bot_count=30, seed=9):
    rng = random.Random(seed)
    for index in range(bot_count):
        ip = parse_ip("25.0.0.1") + index
        forger = SalityForger(SalityDefectProfile(name="bot"), random.Random(2000 + index))
        known = rng.sample(sensors, rng.randint(1, 2))
        time = rng.uniform(0, 60)
        for cycle in range(20):
            for sensor in known:
                command = Command.URLPACK_REQUEST if cycle % 2 else Command.PEER_REQUEST
                payload = (1).to_bytes(4, "big") if command == Command.URLPACK_REQUEST else b""
                message = forger.build(command, payload=payload)
                port = rng.randrange(10240, 65536)
                observe_sality(sensor, forger.encode(message), time, ip, port)
            time += 40 * MINUTE * rng.uniform(0.9, 1.1)


class TestSalityAnalyzer:
    def analyze_with_profile(self, profile):
        sensors = make_sality_sensors()
        add_normal_sality_background(sensors)
        run_sality_crawler_against(sensors, profile, CRAWLER_IP)
        findings = SalityAnomalyAnalyzer().analyze(sensors)
        by_ip = {f.ip: f for f in findings}
        assert CRAWLER_IP in by_ip
        return by_ip[CRAWLER_IP], findings

    def test_each_defect_recovered(self):
        cases = {
            "random_id": dict(random_id=True),
            "version": dict(version=True),
            "lop_range": dict(lop_range=True),
            "port_range": dict(port_range=True),
            "hard_hitter": dict(hard_hitter=True),
            "protocol_logic": dict(protocol_logic=True),
            "encryption": dict(encryption=True),
        }
        for defect, kwargs in cases.items():
            profile = SalityDefectProfile(name=defect, **kwargs)
            finding, _ = self.analyze_with_profile(profile)
            assert finding.has(defect), f"{defect} not recovered: {finding.defects}"

    def test_clean_crawler_shows_no_syntax_defects(self):
        finding, _ = self.analyze_with_profile(SalityDefectProfile(name="clean"))
        syntax = set(finding.defects) - {"hard_hitter", "protocol_logic"}
        assert syntax == set()

    def test_normal_bots_not_flagged(self):
        sensors = make_sality_sensors()
        add_normal_sality_background(sensors, bot_count=40)
        findings = SalityAnomalyAnalyzer().analyze(sensors)
        assert [f for f in findings if f.defects] == []

    def test_matrix_rows(self):
        _, findings = self.analyze_with_profile(SalityDefectProfile(name="x", version=True))
        matrix = defect_matrix(findings, SALITY_DEFECT_ROWS)
        assert set(matrix) == set(SALITY_DEFECT_ROWS)
