"""Integration tests: sensors injected into small simulated botnets."""

import pytest

from repro.botnets.sality.network import SalityNetwork, SalityNetworkConfig
from repro.botnets.zeus import protocol as zeus_protocol
from repro.botnets.zeus.network import ZeusNetwork, ZeusNetworkConfig
from repro.botnets.zeus.protocol import MessageType
from repro.core.sensor import (
    SalitySensor,
    SensorDefectProfile,
    ZeusSensor,
)
from repro.net.address import parse_ip
from repro.net.transport import Endpoint
from repro.sim.clock import DAY, HOUR


def zeus_net(population=60, seed=11):
    net = ZeusNetwork(
        ZeusNetworkConfig(
            population=population, routable_fraction=0.5, bootstrap_peers=10, master_seed=seed
        )
    )
    net.build()
    return net


def inject_zeus_sensor(net, profile=SensorDefectProfile(), index=0, **kwargs):
    rng = net.rngs.fork(f"sensor-{index}").stream("sensor")
    sensor = ZeusSensor(
        node_id=f"sensor-{index}",
        bot_id=zeus_protocol.random_id(rng),
        endpoint=Endpoint(parse_ip(f"50.{index}.0.1"), 6000),
        transport=net.transport,
        scheduler=net.scheduler,
        rng=rng,
        profile=profile,
        announce_duration=4 * HOUR,
        **kwargs,
    )
    sensor.seed_peers(net.bootstrap_sample(10, seed=90 + index))
    return sensor


class TestZeusSensorInjection:
    def test_sensor_gets_contacted_after_announcing(self):
        net = zeus_net()
        sensor = inject_zeus_sensor(net)
        net.start_all()
        sensor.start()
        net.run_for(12 * HOUR)
        assert len(sensor.observations) > 0
        assert len(sensor.observed_ips()) > 1

    def test_sensor_appears_in_bot_peer_lists(self):
        """Announcement pushes the sensor into the population's peer
        lists -- rising in-degree (Section 2.2)."""
        net = zeus_net()
        sensor = inject_zeus_sensor(net)
        net.start_all()
        sensor.start()
        net.run_for(12 * HOUR)
        holders = sum(
            1 for bot in net.bots.values() if sensor.bot_id in bot.peer_list
        )
        assert holders >= 3

    def test_sensor_hears_from_natted_bots(self):
        """Sensors discover NATed bots that contact them -- the key
        coverage advantage over crawlers (Section 2.2)."""
        net = zeus_net(population=100)
        sensor = inject_zeus_sensor(net)
        net.start_all()
        sensor.start()
        net.run_for(24 * HOUR)
        natted_ips = {bot.endpoint.ip for bot in net.non_routable_bots}
        assert sensor.observed_ips() & natted_ips

    def test_augmented_sensor_collects_edges(self):
        net = zeus_net()
        sensor = inject_zeus_sensor(net, active_peer_list_requests=True)
        net.start_all()
        sensor.start()
        net.run_for(12 * HOUR)
        assert len(sensor.observed_edges) > 0

    def test_passive_sensor_collects_no_edges(self):
        net = zeus_net()
        sensor = inject_zeus_sensor(net, active_peer_list_requests=False)
        net.start_all()
        sensor.start()
        net.run_for(8 * HOUR)
        assert sensor.observed_edges == set()

    def test_announcing_window(self):
        net = zeus_net()
        sensor = inject_zeus_sensor(net)
        net.start_all()
        sensor.start()
        assert sensor.announcing
        net.run_for(5 * HOUR)
        assert not sensor.announcing

    def test_observations_log_fields(self):
        net = zeus_net()
        sensor = inject_zeus_sensor(net)
        net.start_all()
        sensor.start()
        net.run_for(8 * HOUR)
        decoded = [o for o in sensor.observations if o.decrypt_ok]
        assert decoded
        sample = decoded[0]
        assert sample.msg_type >= 0
        assert len(sample.source_id) == 20
        assert sample.src_ip > 0

    def test_peer_list_request_log_window(self):
        net = zeus_net()
        sensor = inject_zeus_sensor(net)
        net.start_all()
        sensor.start()
        net.run_for(10 * HOUR)
        all_plrs = sensor.peer_list_request_log()
        windowed = sensor.peer_list_request_log(since=0.0, until=5 * HOUR)
        assert len(windowed) <= len(all_plrs)
        assert all(o.time < 5 * HOUR for o in windowed)


class TestZeusSensorDefects:
    def probe(self, net, sensor, msg_type, payload=b""):
        """Send one request to the sensor from a fresh prober."""
        prober_rng = net.rngs.stream("prober")
        prober = Endpoint(parse_ip("51.0.0.1"), 6001)
        replies = []
        # Snapshot payloads: builder transports recycle Message objects.
        net.transport.bind(prober, lambda m: replies.append(m.payload))
        prober_id = zeus_protocol.random_id(prober_rng)
        message = zeus_protocol.make_message(msg_type, prober_id, prober_rng, payload=payload)
        net.transport.send(prober, sensor.endpoint, zeus_protocol.encrypt_message(message, sensor.bot_id))
        net.run_for(10.0)
        net.transport.unbind(prober)
        return [zeus_protocol.decrypt_message(r, prober_id) for r in replies]

    def test_clean_sensor_answers_proxy_requests(self):
        net = zeus_net()
        sensor = inject_zeus_sensor(net)
        sensor.proxy_list = net.proxies
        net.start_all()
        sensor.start()
        replies = self.probe(net, sensor, MessageType.PROXY_REQUEST)
        assert replies and replies[0].msg_type == MessageType.PROXY_REPLY
        assert zeus_protocol.decode_peer_entries(replies[0].payload) == net.proxies

    def test_defective_sensor_ignores_proxy_requests(self):
        net = zeus_net()
        sensor = inject_zeus_sensor(net, profile=SensorDefectProfile(no_proxy_reply=True))
        net.start_all()
        sensor.start()
        assert self.probe(net, sensor, MessageType.PROXY_REQUEST) == []

    def test_empty_peer_list_defect(self):
        net = zeus_net()
        sensor = inject_zeus_sensor(net, profile=SensorDefectProfile(empty_peer_lists=True))
        net.start_all()
        sensor.start()
        net.run_for(2 * HOUR)
        replies = self.probe(
            net, sensor, MessageType.PEER_LIST_REQUEST, payload=zeus_protocol.random_id(net.rngs.stream("x"))
        )
        assert replies
        assert zeus_protocol.decode_peer_entries(replies[0].payload) == []

    def test_duplicate_peers_defect(self):
        net = zeus_net()
        sensor = inject_zeus_sensor(net, profile=SensorDefectProfile(duplicate_peers=True))
        net.start_all()
        sensor.start()
        net.run_for(2 * HOUR)
        replies = self.probe(
            net, sensor, MessageType.PEER_LIST_REQUEST, payload=zeus_protocol.random_id(net.rngs.stream("x"))
        )
        entries = zeus_protocol.decode_peer_entries(replies[0].payload)
        ids = [bot_id for bot_id, _ in entries]
        assert len(ids) != len(set(ids))  # duplicates present

    def test_stale_version_defect(self):
        net = zeus_net()
        sensor = inject_zeus_sensor(net, profile=SensorDefectProfile(stale_version=True))
        net.start_all()
        sensor.start()
        replies = self.probe(net, sensor, MessageType.VERSION_REQUEST)
        version, _ = zeus_protocol.decode_version_reply(replies[0].payload)
        assert version < sensor.config.version

    def test_no_update_support_defect(self):
        net = zeus_net()
        sensor = inject_zeus_sensor(net, profile=SensorDefectProfile(no_update_support=True))
        net.start_all()
        sensor.start()
        assert self.probe(net, sensor, MessageType.DATA_REQUEST, payload=b"\x01") == []

    def test_defect_names(self):
        profile = SensorDefectProfile(empty_peer_lists=True, stale_version=True)
        assert profile.defect_names() == ["empty_peer_lists", "stale_version"]


class TestSalitySensor:
    def test_sensor_integrates_and_logs(self):
        net = SalityNetwork(
            SalityNetworkConfig(
                population=60, routable_fraction=0.5, bootstrap_peers=10, master_seed=11
            )
        )
        net.build()
        rng = net.rngs.fork("sensor").stream("sensor")
        sensor = SalitySensor(
            node_id="sensor-0",
            bot_id=rng.getrandbits(32).to_bytes(4, "big"),
            endpoint=Endpoint(parse_ip("50.0.0.1"), 6000),
            transport=net.transport,
            scheduler=net.scheduler,
            rng=rng,
            announce_duration=4 * HOUR,
        )
        sensor.seed_peers(net.bootstrap_sample(10, seed=90))
        net.start_all()
        sensor.start()
        net.run_for(16 * HOUR)
        assert len(sensor.observations) > 0
        decoded = [o for o in sensor.observations if o.decode_ok]
        assert decoded
        assert all(o.minor_version >= 0 for o in decoded)

    def test_sensor_earns_goodcount(self):
        """A full-protocol sensor accrues reputation and eventually
        gets propagated -- sensor injection despite the goodcount
        scheme (Section 3.1) just takes patience."""
        net = SalityNetwork(
            SalityNetworkConfig(
                population=40, routable_fraction=0.6, bootstrap_peers=8, master_seed=12
            )
        )
        net.build()
        rng = net.rngs.fork("sensor").stream("sensor")
        sensor = SalitySensor(
            node_id="sensor-0",
            bot_id=rng.getrandbits(32).to_bytes(4, "big"),
            endpoint=Endpoint(parse_ip("50.0.0.1"), 6000),
            transport=net.transport,
            scheduler=net.scheduler,
            rng=rng,
            announce_duration=6 * HOUR,
        )
        sensor.seed_peers(net.bootstrap_sample(8, seed=90))
        net.start_all()
        sensor.start()
        net.run_for(24 * HOUR)
        goodcounts = [
            bot.peer_list.get(sensor.bot_id).goodcount
            for bot in net.bots.values()
            if sensor.bot_id in bot.peer_list
        ]
        assert goodcounts, "sensor never entered any peer list"
        assert max(goodcounts) > 0
