"""Unit tests for defect profiles and message forgers."""

import random

import pytest

from repro.botnets.sality import protocol as sality_protocol
from repro.botnets.zeus import protocol as zeus_protocol
from repro.botnets.zeus.protocol import MessageType, ZeusDecodeError
from repro.core.defects import (
    CLEAN_SALITY,
    CLEAN_ZEUS,
    SalityDefectProfile,
    SalityForger,
    ZeusDefectProfile,
    ZeusForger,
)


def zeus_forger(**defects):
    profile = ZeusDefectProfile(name="test", **defects)
    return ZeusForger(profile, random.Random(0))


def sality_forger(**defects):
    profile = SalityDefectProfile(name="test", **defects)
    return SalityForger(profile, random.Random(0))


class TestZeusCleanForger:
    def test_clean_messages_look_normal(self):
        forger = ZeusForger(CLEAN_ZEUS, random.Random(0))
        messages = [forger.build(MessageType.VERSION_REQUEST) for _ in range(50)]
        assert len({m.random_byte for m in messages}) > 10
        assert len({m.ttl for m in messages}) > 10
        assert len({m.session_id for m in messages}) == 50
        assert len({m.source_id for m in messages}) == 1  # stable identity
        assert len({len(m.padding) for m in messages}) > 5

    def test_clean_lookup_key_is_target_id(self):
        forger = ZeusForger(CLEAN_ZEUS, random.Random(0))
        target = zeus_protocol.random_id(random.Random(5))
        assert forger.lookup_key(target) == target

    def test_clean_encryption_always_correct(self):
        forger = ZeusForger(CLEAN_ZEUS, random.Random(0))
        targets = [zeus_protocol.random_id(random.Random(i)) for i in range(20)]
        for target in targets:
            message = forger.build(MessageType.VERSION_REQUEST)
            wire = forger.encrypt(message, target)
            assert zeus_protocol.decrypt_message(wire, target) == message

    def test_defect_names_empty_for_clean(self):
        assert CLEAN_ZEUS.defect_names() == []
        assert CLEAN_SALITY.defect_names() == []


class TestZeusRangeDefects:
    def test_static_random_byte(self):
        forger = zeus_forger(rnd_range=True)
        assert {forger.build(0).random_byte for _ in range(30)} == {0x00}

    def test_static_ttl(self):
        forger = zeus_forger(ttl_range=True)
        assert {forger.build(0).ttl for _ in range(30)} == {0x40}

    def test_constrained_lop(self):
        forger = zeus_forger(lop_range=True)
        assert all(len(forger.build(0).padding) == 0 for _ in range(30))

    def test_session_rotation_small_pool(self):
        forger = zeus_forger(session_range=True)
        sessions = {forger.build(0).session_id for _ in range(50)}
        assert len(sessions) <= 3

    def test_random_source_ids(self):
        forger = zeus_forger(random_source=True)
        sources = {forger.build(0).source_id for _ in range(50)}
        assert len(sources) == 50


class TestZeusEntropyDefects:
    def test_ascii_source_id(self):
        forger = zeus_forger(source_entropy=True)
        source = forger.build(0).source_id
        assert b"ACME" in source
        assert len(source) == 20

    def test_low_entropy_session(self):
        forger = zeus_forger(session_entropy=True)
        session = forger.build(0).session_id
        assert session.startswith(b"SESSION-")

    def test_zero_padding(self):
        forger = zeus_forger(padding_entropy=True)
        padded = [m for m in (forger.build(0) for _ in range(50)) if m.padding]
        assert padded, "expected some messages with padding"
        assert all(set(m.padding) == {0} for m in padded)


class TestZeusLogicAndEncryptionDefects:
    def test_abnormal_lookup_randomized(self):
        forger = zeus_forger(abnormal_lookup=True)
        target = zeus_protocol.random_id(random.Random(5))
        keys = {forger.lookup_key(target) for _ in range(20)}
        assert target not in keys
        assert len(keys) == 20

    def test_encryption_defect_reuses_stale_keys(self):
        forger = zeus_forger(encryption=True)
        targets = [zeus_protocol.random_id(random.Random(i)) for i in range(100)]
        failures = 0
        for target in targets:
            message = forger.build(MessageType.VERSION_REQUEST)
            wire = forger.encrypt(message, target)
            try:
                zeus_protocol.decrypt_message(wire, target)
            except ZeusDecodeError:
                failures += 1
        # ~30% of messages towards new targets use the previous key.
        assert 10 <= failures <= 60

    def test_first_message_never_misencrypted(self):
        forger = zeus_forger(encryption=True)
        target = zeus_protocol.random_id(random.Random(5))
        message = forger.build(MessageType.VERSION_REQUEST)
        wire = forger.encrypt(message, target)
        assert zeus_protocol.decrypt_message(wire, target) == message


class TestSalityForger:
    def test_clean_packets_normal(self):
        forger = SalityForger(CLEAN_SALITY, random.Random(0))
        messages = [forger.build(sality_protocol.Command.PEER_REQUEST) for _ in range(50)]
        assert len({m.bot_id for m in messages}) == 1
        assert all(m.minor_version == sality_protocol.CURRENT_MINOR_VERSION for m in messages)
        assert len({len(m.padding) for m in messages}) > 5

    def test_random_id_defect(self):
        forger = sality_forger(random_id=True)
        ids = {forger.build(2).bot_id for _ in range(50)}
        assert len(ids) == 50

    def test_version_defect(self):
        forger = sality_forger(version=True)
        assert forger.build(2).minor_version == SalityForger.STALE_MINOR_VERSION

    def test_fixed_padding_defect(self):
        forger = sality_forger(lop_range=True)
        assert all(forger.build(2).padding == b"" for _ in range(30))

    def test_encryption_defect_garbles_some_packets(self):
        forger = sality_forger(encryption=True)
        failures = 0
        for _ in range(100):
            wire = forger.encode(forger.build(sality_protocol.Command.PEER_REQUEST))
            try:
                sality_protocol.decode_packet(wire)
            except sality_protocol.SalityDecodeError:
                failures += 1
        assert 10 <= failures <= 60

    def test_clean_packets_always_decode(self):
        forger = SalityForger(CLEAN_SALITY, random.Random(0))
        for _ in range(50):
            message = forger.build(sality_protocol.Command.PEER_REQUEST)
            assert sality_protocol.decode_packet(forger.encode(message)) == message


class TestDefectNames:
    def test_zeus_defect_names_ordered(self):
        profile = ZeusDefectProfile(
            name="x", rnd_range=True, hard_hitter=True, encryption=True
        )
        assert profile.defect_names() == ["rnd_range", "hard_hitter", "encryption"]

    def test_sality_defect_names(self):
        profile = SalityDefectProfile(name="x", version=True, port_range=True)
        assert profile.defect_names() == ["version", "port_range"]
