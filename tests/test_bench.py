"""Unit tests for the perf bench harness (mechanics, not timings).

The real workloads are timed by ``repro bench`` / CI's bench-smoke job
and ``benchmarks/bench_perf.py``; here a stub workload keeps the tier-1
suite fast while still exercising run/compare/load end to end.
"""

import pytest

from repro import bench
from repro.bench import (
    BENCH_SCHEMA,
    DEFAULT_THRESHOLD,
    WORKLOADS,
    compare_bench,
    load_bench,
    run_bench,
    run_workload,
    write_bench,
)


@pytest.fixture
def stub_workload(monkeypatch):
    def fake(quick):
        from repro.obs import runtime

        runtime.tracer().instant(1.0, "test", "tick")
        return {"events": len(runtime.tracer())}

    monkeypatch.setitem(WORKLOADS, "stub", fake)
    return "stub"


@pytest.fixture
def stub_with_extras(monkeypatch):
    def fake(quick):
        return {"events": 10, "population_rss_kb": 512, "peer_slots_live": 7}

    monkeypatch.setitem(WORKLOADS, "stub-extras", fake)
    return "stub-extras"


class TestRunWorkload:
    def test_canonical_workloads_registered(self):
        assert set(WORKLOADS) >= {"crawl", "detect", "population", "sweep"}

    def test_entry_shape(self, stub_workload):
        entry = run_workload(stub_workload, quick=True)
        assert set(entry) == {"wall_s", "events", "events_per_s", "peak_rss_kb"}
        assert entry["events"] == 1
        assert entry["wall_s"] >= 0
        assert entry["peak_rss_kb"] > 0

    def test_extras_merged_into_entry(self, stub_with_extras):
        entry = run_workload(stub_with_extras, quick=True)
        assert entry["events"] == 10
        assert entry["population_rss_kb"] == 512
        assert entry["peer_slots_live"] == 7

    def test_repeat_uses_fresh_tracer(self, stub_workload):
        # Each repetition activates a new tracer, so the event count
        # does not accumulate across repeats.
        entry = run_workload(stub_workload, quick=True, repeat=3)
        assert entry["events"] == 1


class TestRunBench:
    def test_document_shape(self, stub_workload):
        doc = run_bench([stub_workload], quick=True)
        assert doc["schema"] == BENCH_SCHEMA
        assert doc["quick"] is True
        assert list(doc["workloads"]) == [stub_workload]

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            run_bench(["nope"])

    def test_write_and_load_roundtrip(self, tmp_path, stub_workload):
        path = str(tmp_path / "BENCH_recon.json")
        doc = run_bench([stub_workload], quick=True)
        write_bench(doc, path)
        assert load_bench(path) == doc

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = str(tmp_path / "bad.json")
        write_bench({"schema": "repro-bench/0", "workloads": {}}, path)
        with pytest.raises(ValueError):
            load_bench(path)


def _doc(**walls):
    return {
        "schema": BENCH_SCHEMA,
        "workloads": {
            name: {"wall_s": wall, "events": 100, "events_per_s": 100.0, "peak_rss_kb": 1}
            for name, wall in walls.items()
        },
    }


class TestCompareBench:
    def test_within_threshold_passes(self):
        lines, regressions = compare_bench(_doc(crawl=1.1), _doc(crawl=1.0))
        assert regressions == []
        assert any("ok" in line for line in lines)

    def test_regression_past_threshold_fails(self):
        lines, regressions = compare_bench(
            _doc(crawl=1.5), _doc(crawl=1.0), threshold=DEFAULT_THRESHOLD
        )
        assert regressions == ["crawl"]
        assert any("REGRESSION" in line for line in lines)

    def test_improvement_never_fails(self):
        _, regressions = compare_bench(_doc(crawl=0.2), _doc(crawl=1.0))
        assert regressions == []

    def test_threshold_is_configurable(self):
        _, loose = compare_bench(_doc(crawl=1.4), _doc(crawl=1.0), threshold=0.5)
        _, tight = compare_bench(_doc(crawl=1.4), _doc(crawl=1.0), threshold=0.1)
        assert loose == [] and tight == ["crawl"]

    def test_new_and_missing_workloads_reported_not_gated(self):
        lines, regressions = compare_bench(_doc(new=1.0), _doc(old=1.0))
        assert regressions == []
        assert any("new workload" in line for line in lines)
        assert any("missing from current" in line for line in lines)


class TestRenderBench:
    def test_extras_rendered_as_line_items(self):
        doc = _doc(population=1.0)
        doc["workloads"]["population"]["population_rss_kb"] = 4096
        out = bench.render_bench(doc)
        assert "population_rss_kb=4096" in out

    def test_core_keys_not_duplicated_as_extras(self):
        out = bench.render_bench(_doc(crawl=1.0))
        assert "wall_s=" not in out


class TestCompareGuards:
    def test_quick_vs_full_refused(self):
        current, baseline = _doc(crawl=1.0), _doc(crawl=1.0)
        current["quick"] = True
        with pytest.raises(bench.BenchCompareError, match="--quick"):
            compare_bench(current, baseline)

    def test_full_vs_quick_refused(self):
        current, baseline = _doc(crawl=1.0), _doc(crawl=1.0)
        baseline["quick"] = True
        with pytest.raises(bench.BenchCompareError, match="baseline"):
            compare_bench(current, baseline)

    def test_schema_family_mismatch_refused(self):
        baseline = _doc(crawl=1.0)
        baseline["schema"] = "other-tool/1"
        with pytest.raises(bench.BenchCompareError, match="schema family"):
            compare_bench(_doc(crawl=1.0), baseline)

    def test_older_bench_schema_minor_still_comparable(self):
        # v1/v2 baselines share the repro-bench family and must keep
        # comparing against v3 documents.
        baseline = _doc(crawl=1.0)
        baseline["schema"] = "repro-bench/2"
        _, regressions = compare_bench(_doc(crawl=1.0), baseline)
        assert regressions == []

    def test_regression_line_blames_subsystem(self):
        def profiled(wall, net_s):
            doc = _doc(crawl=wall)
            doc["workloads"]["crawl"]["profile"] = {
                "window_s": wall,
                "attributed_s": net_s + 0.1,
                "attributed_share": 1.0,
                "subsystems": {
                    "net": {"wall_s": net_s, "share": 0.9},
                    "core": {"wall_s": 0.1, "share": 0.1},
                },
            }
            return doc

        lines, regressions = compare_bench(profiled(2.0, 1.8), profiled(1.0, 0.8))
        assert regressions == ["crawl"]
        blamed = [line for line in lines if "hottest subsystem delta" in line]
        assert blamed and "net" in blamed[0]


class TestProfiledBench:
    def test_profile_breakdown_attached(self, stub_workload):
        entry = run_workload(stub_workload, profile=True)
        breakdown = entry["profile"]
        assert set(breakdown) == {
            "window_s", "attributed_s", "attributed_share", "subsystems"
        }
        assert 0.0 <= breakdown["attributed_share"] <= 1.0

    def test_profile_off_by_default(self, stub_workload):
        assert "profile" not in run_workload(stub_workload)

    def test_schema_is_v3(self, stub_workload):
        doc = run_bench([stub_workload], profile=True)
        assert doc["schema"] == "repro-bench/3"
        assert doc["profile"] is True

    def test_quick_crawl_attribution_meets_floor(self):
        # The acceptance bar: the subsystem breakdown explains at least
        # 90% of measured wall time for a real workload.
        collect = {}
        entry = run_workload("crawl", quick=True, profile=True, collect=collect)
        assert entry["profile"]["attributed_share"] >= 0.90
        assert collect["tree"]["subsystems"]
