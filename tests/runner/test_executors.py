"""Executor tests: serial/parallel equivalence, retries, crash
recovery, and progress reporting.

The worker-pool tests rely on the default ``fork`` start method so
point functions registered by this module are visible to workers.
"""

import os

import pytest

from repro.runner.executors import (
    ProcessExecutor,
    SerialExecutor,
    SweepExecutionError,
    run_sweep,
)
from repro.runner.progress import (
    POINT_DONE,
    POINT_RETRY,
    SWEEP_DONE,
    SWEEP_START,
    ConsoleProgress,
    ProgressEvent,
)
from repro.runner.registry import register_point, registered_points, resolve_point
from repro.runner.sweep import SweepSpec, make_points


def _square_spec(n=6, root_seed=3):
    return SweepSpec(
        name="squares",
        root_seed=root_seed,
        points=make_points(root_seed, "t-square", [{"x": i} for i in range(n)]),
    )


class TestRegistry:
    def test_resolve_known(self):
        assert resolve_point("t-square")({"x": 3}, 0)["square"] == 9

    def test_resolve_unknown(self):
        with pytest.raises(KeyError, match="unknown point function"):
            resolve_point("no-such-point")

    def test_reregistration_conflict_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_point("t-square")(lambda params, seed: {})

    def test_library_points_registered(self):
        names = registered_points()
        assert "zeus-detection-cell" in names
        assert "zeus-ratio-crawl" in names
        assert "sality-ratio-crawl" in names


class TestSerialExecutor:
    def test_runs_all_points_in_order(self):
        result = SerialExecutor().run(_square_spec())
        assert [v["square"] for v in result.values()] == [i * i for i in range(6)]
        assert result.metrics.points_completed == 6
        assert result.metrics.workers == 1

    def test_retry_then_success(self, tmp_path):
        spec = SweepSpec(
            name="flaky",
            root_seed=0,
            points=make_points(
                0, "t-flaky", [{"x": 1, "marker": str(tmp_path / "m1")}]
            ),
        )
        result = SerialExecutor(max_retries=2).run(spec)
        assert result.values()[0]["recovered"] is True
        assert result.metrics.retries == 1
        assert result.records[0].attempts == 2

    def test_retry_budget_exhausted(self):
        spec = SweepSpec(
            name="fail",
            root_seed=0,
            points=make_points(0, "t-always-fail", [{}]),
        )
        with pytest.raises(SweepExecutionError, match="after 3 attempts"):
            SerialExecutor(max_retries=2).run(spec)

    def test_zero_retries_allowed(self):
        spec = SweepSpec(
            name="fail", root_seed=0, points=make_points(0, "t-always-fail", [{}])
        )
        with pytest.raises(SweepExecutionError, match="after 1 attempts"):
            SerialExecutor(max_retries=0).run(spec)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            SerialExecutor(max_retries=-1)


class TestProcessExecutor:
    def test_matches_serial_results(self):
        spec = _square_spec(n=10)
        serial = SerialExecutor().run(spec)
        parallel = ProcessExecutor(workers=3).run(spec)
        assert serial.values() == parallel.values()
        assert parallel.metrics.workers == 3

    def test_worker_count_validation(self):
        with pytest.raises(ValueError):
            ProcessExecutor(workers=0)

    def test_retry_in_worker(self, tmp_path):
        points = [{"x": 0, "marker": str(tmp_path / "w0")}]
        spec = SweepSpec(
            name="flaky", root_seed=0, points=make_points(0, "t-flaky", points)
        )
        result = ProcessExecutor(workers=2).run(spec)
        assert result.values()[0]["recovered"] is True
        assert result.metrics.retries == 1

    def test_hard_crash_recovery(self, tmp_path):
        # One point kills its worker; healthy points complete and the
        # pool is rebuilt so the crasher's second attempt succeeds.
        from repro.runner.sweep import SweepPoint, point_seed

        spec = SweepSpec(
            name="crashy",
            root_seed=0,
            points=(
                SweepPoint(0, "t-square", {"x": 7}, point_seed(0, 0)),
                SweepPoint(
                    1,
                    "t-hard-crash",
                    {"x": 1, "marker": str(tmp_path / "crash-once")},
                    point_seed(0, 1),
                ),
            ),
        )
        result = ProcessExecutor(workers=2).run(spec)
        assert result.values()[0]["square"] == 49
        assert result.values()[1]["survived"] is True
        assert result.metrics.pool_restarts >= 1

    def test_persistent_crasher_raises(self, tmp_path):
        from repro.runner.sweep import SweepPoint, point_seed

        # Marker path in a missing directory: creation fails, so the
        # point crashes the worker on every attempt.
        spec = SweepSpec(
            name="doomed",
            root_seed=0,
            points=(
                SweepPoint(
                    0,
                    "t-hard-crash",
                    {"x": 0, "marker": str(tmp_path / "no-dir" / "m")},
                    point_seed(0, 0),
                ),
            ),
        )
        with pytest.raises(SweepExecutionError):
            ProcessExecutor(workers=2, max_retries=1).run(spec)

    def test_exhaustion_reports_failing_index(self):
        from repro.runner.sweep import SweepPoint, point_seed

        spec = SweepSpec(
            name="mixed",
            root_seed=0,
            points=(
                SweepPoint(0, "t-square", {"x": 2}, point_seed(0, 0)),
                SweepPoint(1, "t-always-fail", {}, point_seed(0, 1)),
                SweepPoint(2, "t-square", {"x": 3}, point_seed(0, 2)),
            ),
        )
        with pytest.raises(SweepExecutionError) as excinfo:
            ProcessExecutor(workers=2, max_retries=1).run(spec)
        assert excinfo.value.indices == (1,)

    def test_worker_death_does_not_hang_healthy_points(self, tmp_path):
        # A worker dying mid-batch must not strand the other points:
        # the pool is rebuilt, the sweep either completes or raises,
        # and the error names the unrecoverable point.
        from repro.runner.sweep import SweepPoint, point_seed

        points = [SweepPoint(i, "t-square", {"x": i}, point_seed(0, i)) for i in range(5)]
        points[2] = SweepPoint(
            2,
            "t-hard-crash",
            {"x": 2, "marker": str(tmp_path / "no-dir" / "m")},
            point_seed(0, 2),
        )
        spec = SweepSpec(name="crashy", root_seed=0, points=tuple(points))
        with pytest.raises(SweepExecutionError) as excinfo:
            ProcessExecutor(workers=2, max_retries=1).run(spec)
        assert excinfo.value.indices == (2,)


class TestSweepExecutionErrorIndices:
    def test_serial_exhaustion_reports_index(self):
        spec = SweepSpec(
            name="fail",
            root_seed=0,
            points=make_points(0, "t-always-fail", [{}]),
        )
        with pytest.raises(SweepExecutionError) as excinfo:
            SerialExecutor(max_retries=0).run(spec)
        assert excinfo.value.indices == (0,)

    def test_indices_default_empty(self):
        assert SweepExecutionError("boom").indices == ()


class TestRunSweep:
    def test_workers_one_uses_serial(self):
        result = run_sweep(_square_spec(), workers=1)
        assert result.metrics.workers == 1

    def test_workers_many_matches_serial(self):
        spec = _square_spec(n=8)
        assert run_sweep(spec, workers=1).values() == run_sweep(spec, workers=4).values()


class TestProgress:
    def test_event_lifecycle(self):
        events = []
        SerialExecutor().run(_square_spec(n=3), progress=events.append)
        kinds = [event.kind for event in events]
        assert kinds[0] == SWEEP_START
        assert kinds[-1] == SWEEP_DONE
        assert kinds.count(POINT_DONE) == 3
        done = [event for event in events if event.kind == POINT_DONE]
        assert [event.completed for event in done] == [1, 2, 3]
        assert all(event.total == 3 for event in events)

    def test_retry_event_emitted(self, tmp_path):
        events = []
        spec = SweepSpec(
            name="flaky",
            root_seed=0,
            points=make_points(
                0, "t-flaky", [{"x": 1, "marker": str(tmp_path / "p")}]
            ),
        )
        SerialExecutor().run(spec, progress=events.append)
        assert POINT_RETRY in [event.kind for event in events]

    def test_console_progress_writes_lines(self, tmp_path, capsys):
        import io

        stream = io.StringIO()
        hook = ConsoleProgress(stream=stream)
        SerialExecutor().run(_square_spec(n=2), progress=hook)
        lines = stream.getvalue().splitlines()
        assert lines[0].startswith("sweep: 2 points")
        assert any("[2/2]" in line for line in lines)
        assert lines[-1].startswith("sweep done")

    def test_console_progress_handles_all_kinds(self):
        import io

        stream = io.StringIO()
        hook = ConsoleProgress(stream=stream)
        hook(ProgressEvent(kind="pool-restart", completed=0, total=1, detail="x"))
        assert "restarted" in stream.getvalue()
