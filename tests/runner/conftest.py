"""Shared test point functions for the runner suite.

Registered at conftest import so every module in tests/runner/ (and
any forked worker process) can resolve them by name.
"""

import os

from repro.runner.registry import register_point


@register_point("t-square")
def _square(params, seed):
    return {"x": params["x"], "square": params["x"] ** 2, "seed": seed}


@register_point("t-flaky")
def _flaky(params, seed):
    # Fails until its marker file exists; the first attempt creates it,
    # so attempt 2 succeeds -- in this process or any forked worker.
    marker = params["marker"]
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("attempted")
        raise RuntimeError("flaky point: first attempt fails")
    return {"x": params["x"], "recovered": True}


@register_point("t-hard-crash")
def _hard_crash(params, seed):
    # Kills the worker outright (no exception, no cleanup) on the
    # first attempt: exercises BrokenExecutor pool recovery.
    marker = params["marker"]
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("crashed")
        os._exit(17)
    return {"x": params["x"], "survived": True}


@register_point("t-always-fail")
def _always_fail(params, seed):
    raise RuntimeError("this point never succeeds")
