"""Unit tests for sweep types, seed derivation, and aggregation."""

import pytest

from repro.runner.aggregate import (
    coverage_relative,
    coverage_series,
    fig2_grid,
    fig2_series,
    render_fig2_sweep,
    render_generic,
    render_result,
)
from repro.runner.sweep import (
    PointRecord,
    SweepMetrics,
    SweepResult,
    SweepSpec,
    make_points,
    merge_records,
    point_seed,
)


def _record(index, values, point="echo", seed=0):
    return PointRecord(
        index=index, point=point, params={}, seed=seed, values=values
    )


class TestPointSeeds:
    def test_deterministic(self):
        assert point_seed(42, 7) == point_seed(42, 7)

    def test_distinct_across_indices(self):
        seeds = [point_seed(0, i) for i in range(1000)]
        assert len(set(seeds)) == 1000

    def test_distinct_across_roots(self):
        assert point_seed(0, 3) != point_seed(1, 3)

    def test_make_points_assigns_index_derived_seeds(self):
        points = make_points(9, "echo", [{"a": 1}, {"a": 2}, {"a": 3}])
        assert [p.index for p in points] == [0, 1, 2]
        assert [p.seed for p in points] == [point_seed(9, i) for i in range(3)]
        assert all(p.point == "echo" for p in points)


class TestMergeRecords:
    def test_orders_by_index(self):
        records = [_record(2, {"v": 2}), _record(0, {"v": 0}), _record(1, {"v": 1})]
        merged = merge_records(records, 3)
        assert [r.index for r in merged] == [0, 1, 2]

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            merge_records([_record(0, {}), _record(0, {})], 2)

    def test_missing_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            merge_records([_record(0, {}), _record(2, {})], 3)

    def test_missing_message_names_points_and_counts(self):
        with pytest.raises(ValueError, match=r"got 2/4 records.*missing points \[1, 3\]"):
            merge_records([_record(0, {}), _record(2, {})], 4)

    def test_out_of_range_index_rejected(self):
        # A record beyond the sweep bounds is a stray (wrong sweep, bad
        # wire frame), not a candidate for silent inclusion.
        with pytest.raises(ValueError, match="outside sweep of 2 points"):
            merge_records([_record(0, {}), _record(5, {})], 2)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="outside sweep"):
            merge_records([_record(-1, {})], 2)

    def test_negative_expected_rejected(self):
        with pytest.raises(ValueError, match="expected"):
            merge_records([], -1)


class TestMetrics:
    def test_utilization_bounds(self):
        metrics = SweepMetrics(workers=2, points_total=4)
        assert metrics.utilization() == 0.0
        metrics.wall_time = 10.0
        metrics.point_wall_times = [5.0, 5.0, 5.0, 5.0]
        assert metrics.utilization() == 1.0
        metrics.point_wall_times = [1.0]
        assert 0.0 < metrics.utilization() < 1.0

    def test_summary_mentions_counts(self):
        metrics = SweepMetrics(
            workers=3, points_total=5, points_completed=5, wall_time=2.0
        )
        text = metrics.summary()
        assert "5/5" in text
        assert "3 workers" in text


def _sweep_result(values_list, aggregator=None, point="p"):
    spec = SweepSpec(
        name="t",
        root_seed=0,
        points=make_points(0, point, [{} for _ in values_list]),
        aggregator=aggregator,
    )
    records = [_record(i, values, point=point) for i, values in enumerate(values_list)]
    return SweepResult(spec=spec, records=records, metrics=SweepMetrics())


class TestFig2Aggregation:
    def _result(self):
        values = [
            {"threshold": 0.05, "ratio": 2, "detection_rate": 0.5, "false_positives": 1},
            {"threshold": 0.05, "ratio": 1, "detection_rate": 1.0, "false_positives": 2},
            {"threshold": 0.10, "ratio": 1, "detection_rate": 0.75, "false_positives": 0},
        ]
        return _sweep_result(values, aggregator="fig2")

    def test_series_grouped_and_sorted(self):
        series = fig2_series(self._result())
        assert series[0.05] == [(1, 100.0), (2, 50.0)]
        assert series[0.10] == [(1, 75.0)]

    def test_grid_keyed_like_detection_grid(self):
        grid = fig2_grid(self._result())
        assert grid[(0.05, 1)]["false_positives"] == 2

    def test_render_includes_every_ratio_column(self):
        text = render_fig2_sweep(self._result())
        assert "1/1" in text and "1/2" in text
        assert "Figure 2" in text

    def test_render_result_dispatches_on_aggregator(self):
        assert "Figure 2" in render_result(self._result())


class TestCoverageAggregation:
    def _result(self):
        values = [
            {"ratio": 1, "distinct_ips": 100, "series": [[0.0, 10], [3600.0, 100]]},
            {"ratio": 4, "distinct_ips": 40, "series": [[0.0, 5], [3600.0, 40]]},
        ]
        return _sweep_result(values)

    def test_relative_coverage(self):
        relative = coverage_relative(self._result())
        assert relative == {"1/1": 1.0, "1/4": 0.4}

    def test_series_labels(self):
        series = coverage_series(self._result())
        assert series["1/4"] == [(0.0, 5), (3600.0, 40)]

    def test_missing_baseline_rejected(self):
        result = _sweep_result([{"ratio": 2, "distinct_ips": 5, "series": []}])
        with pytest.raises(ValueError, match="baseline"):
            coverage_relative(result)


class TestGenericRender:
    def test_renders_rows(self):
        result = _sweep_result([{"a": 1, "b": 2.5}, {"a": 3, "b": 0.5}])
        text = render_generic(result)
        assert "a" in text and "b" in text
        assert "3" in text

    def test_empty_sweep(self):
        assert "empty" in render_generic(_sweep_result([]))
