"""Subprocess transport and host worker tests.

The wire/worker loop is unit-tested over in-memory streams (cheap,
deterministic); a small number of tests cross a real process boundary
with the importable ``echo`` point, including a mid-run SIGKILL."""

import io
import json
import os

import pytest

import repro
from repro.runner.dispatch import wire
from repro.runner.dispatch.faultplan import KILL, STALL, HostFault
from repro.runner.dispatch.hostworker import serve
from repro.runner.dispatch.subproc import SubprocessHostPool, worker_env
from repro.runner.dispatch.wire import WorkUnit
from repro.runner.executors import SerialExecutor
from repro.runner.sweep import SweepSpec, make_points, point_seed


def _echo_spec(n=6, root_seed=5):
    return SweepSpec(
        name="echo",
        root_seed=root_seed,
        points=make_points(root_seed, "echo", [{"x": i} for i in range(n)]),
    )


class TestWire:
    def test_work_unit_round_trip(self):
        unit = WorkUnit(
            point="echo", params={"x": 1}, seed=point_seed(0, 0),
            index=0, attempt=2, capture=True,
        )
        assert WorkUnit.from_wire(wire.decode(wire.encode(unit.to_wire()))) == unit

    def test_record_round_trip(self):
        from repro.runner.executors import _execute_point

        record = _execute_point(("echo", {"x": 3}, 9, 4, 1, False))
        restored = wire.record_from_wire(
            wire.decode(wire.encode(wire.record_to_wire(record)))
        )
        assert restored.index == 4
        assert restored.values == record.values
        assert restored.seed == 9

    def test_encode_is_canonical(self):
        a = wire.encode({"b": 1, "a": 2})
        b = wire.encode({"a": 2, "b": 1})
        assert a == b

    def test_decode_blank_is_none(self):
        assert wire.decode("   \n") is None

    def test_decode_rejects_non_messages(self):
        with pytest.raises(ValueError, match="wire message"):
            wire.decode("[1, 2, 3]")


class TestHostWorkerLoop:
    def _serve(self, *messages):
        stdin = io.StringIO(
            "".join(wire.encode(m) + "\n" for m in messages)
        )
        stdout = io.StringIO()
        serve(stdin=stdin, stdout=stdout)
        return [
            wire.decode(line)
            for line in stdout.getvalue().splitlines()
            if line.strip()
        ]

    def test_ping_pong(self):
        replies = self._serve({"op": wire.OP_PING})
        assert len(replies) == 1
        assert replies[0]["op"] == wire.OP_PONG
        # Pongs double as heartbeats carrying advisory host telemetry.
        assert replies[0]["telemetry"]["points_done"] == 0

    def test_run_returns_record(self):
        unit = WorkUnit(
            point="echo", params={"x": 7}, seed=11, index=3, attempt=1
        )
        replies = self._serve(unit.to_wire())
        assert replies[0]["op"] == wire.OP_RECORD
        assert replies[0]["values"] == {"seed": 11, "x": 7}
        assert replies[0]["index"] == 3

    def test_unknown_point_is_error_reply(self):
        unit = WorkUnit(
            point="no-such-point", params={}, seed=0, index=2, attempt=1
        )
        replies = self._serve(unit.to_wire())
        assert replies[0]["op"] == wire.OP_ERROR
        assert replies[0]["index"] == 2

    def test_bad_line_reported_not_fatal(self):
        stdin = io.StringIO('{"not": "a message"}\n' + wire.encode({"op": wire.OP_PING}) + "\n")
        stdout = io.StringIO()
        serve(stdin=stdin, stdout=stdout)
        replies = [wire.decode(l) for l in stdout.getvalue().splitlines()]
        assert replies[0]["op"] == wire.OP_ERROR
        assert replies[1]["op"] == wire.OP_PONG

    def test_exit_stops_loop(self):
        replies = self._serve({"op": wire.OP_EXIT}, {"op": wire.OP_PING})
        assert replies == []

    def test_unknown_op_is_error(self):
        replies = self._serve({"op": "teleport"})
        assert replies[0]["op"] == wire.OP_ERROR


class TestSubprocessPool:
    def test_host_count_validation(self):
        with pytest.raises(ValueError):
            SubprocessHostPool(0)

    def test_matches_serial(self):
        from repro.runner.dispatch import DispatchExecutor

        spec = _echo_spec()
        serial = SerialExecutor().run(spec)
        with SubprocessHostPool(hosts=2) as pool:
            result = DispatchExecutor(pool=pool).run(spec)
        assert json.dumps(result.values()) == json.dumps(serial.values())

    def test_kill_fault_recovers(self):
        from repro.runner.dispatch import DispatchExecutor, parse_host_faults

        spec = _echo_spec(n=8)
        serial = SerialExecutor().run(spec)
        with SubprocessHostPool(hosts=3) as pool:
            executor = DispatchExecutor(
                pool=pool, fault_plan=parse_host_faults("kill:1@0.5")
            )
            result = executor.run(spec)
        assert json.dumps(result.values()) == json.dumps(serial.values())
        assert result.metrics.pool_restarts == 1

    def test_stall_fault_unsupported(self):
        with SubprocessHostPool(hosts=1) as pool:
            with pytest.raises(ValueError, match="supports only"):
                pool.inject(HostFault(STALL, host=0, at_progress=0.0, duration=2))

    def test_kill_then_silence(self):
        with SubprocessHostPool(hosts=1) as pool:
            pool.inject(HostFault(KILL, host=0, at_progress=0.0))
            assert pool.step(0) is None


class TestWorkerEnv:
    def test_package_root_leads_pythonpath(self):
        root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = worker_env()
        assert env["PYTHONPATH"].split(os.pathsep)[0] == root

    def test_existing_pythonpath_preserved(self, monkeypatch):
        monkeypatch.setenv("PYTHONPATH", "/some/other/dir")
        parts = worker_env()["PYTHONPATH"].split(os.pathsep)
        assert "/some/other/dir" in parts
        root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        assert parts[0] == root

    def test_no_duplicate_entries(self, monkeypatch):
        root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        monkeypatch.setenv("PYTHONPATH", root)
        parts = worker_env()["PYTHONPATH"].split(os.pathsep)
        assert parts.count(root) == 1

    def test_other_env_inherited(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_MARKER", "yes")
        assert worker_env()["REPRO_TEST_MARKER"] == "yes"

    def test_worker_resolves_package_without_ambient_pythonpath(self, monkeypatch):
        """The regression: a parent that imported repro via sys.path
        (no PYTHONPATH in its environment) must still spawn workers
        that can ``python -m`` the hostworker module."""
        monkeypatch.delenv("PYTHONPATH", raising=False)
        spec = _echo_spec(n=2)
        serial = SerialExecutor().run(spec)
        from repro.runner.dispatch import DispatchExecutor

        with SubprocessHostPool(hosts=1) as pool:
            result = DispatchExecutor(pool=pool).run(spec)
        assert json.dumps(result.values()) == json.dumps(serial.values())
