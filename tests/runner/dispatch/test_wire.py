"""Wire-protocol versioning: hello handshake, named rejections, and
the telemetry side channel on record/pong replies."""

import io

import pytest

from repro.runner.dispatch import wire
from repro.runner.dispatch.hostworker import serve
from repro.runner.dispatch.subproc import SubprocessHostPool
from repro.runner.dispatch.wire import WIRE_VERSION, WireVersionError


class TestHello:
    def test_hello_round_trip(self):
        message = wire.decode(wire.encode(wire.hello_to_wire()))
        assert message == {"op": wire.OP_HELLO, "version": WIRE_VERSION}
        # A matching hello passes check_hello silently.
        wire.check_hello(message, host=0)

    def test_worker_echoes_hello(self):
        stdin = io.StringIO(wire.encode(wire.hello_to_wire()) + "\n")
        stdout = io.StringIO()
        serve(stdin=stdin, stdout=stdout)
        reply = wire.decode(stdout.getvalue().splitlines()[0])
        assert reply == {"op": wire.OP_HELLO, "version": WIRE_VERSION}

    def test_version_mismatch_names_both_versions(self):
        message = {"op": wire.OP_HELLO, "version": 99}
        with pytest.raises(WireVersionError) as excinfo:
            wire.check_hello(message, host=2)
        text = str(excinfo.value)
        assert "host 2" in text
        assert "99" in text and str(WIRE_VERSION) in text

    def test_wrong_op_is_a_version_error(self):
        with pytest.raises(WireVersionError, match="host 1"):
            wire.check_hello({"op": wire.OP_PONG}, host=1)

    def test_pre_versioned_worker_is_named(self):
        # An old hostworker replies to hello with an "unknown op" error;
        # that must surface as the same named rejection, not a generic
        # protocol failure.
        reply = {"op": wire.OP_ERROR, "error": "unknown op 'hello'"}
        with pytest.raises(WireVersionError, match="pre-versioned"):
            wire.check_hello(reply, host=0)


class TestVersionMismatchRegression:
    def test_mismatched_hostworker_is_rejected_at_pool_construction(
        self, monkeypatch
    ):
        """A dispatcher speaking a different wire version than its
        hostworkers must fail fast with WireVersionError -- not hang,
        not decode garbage mid-sweep."""
        monkeypatch.setattr(wire, "WIRE_VERSION", 99)
        with pytest.raises(WireVersionError) as excinfo:
            SubprocessHostPool(1)
        text = str(excinfo.value)
        assert "99" in text  # both sides named in the error


class TestTelemetrySideChannel:
    def test_record_to_wire_carries_telemetry(self):
        from repro.runner.executors import _execute_point

        record = _execute_point(("echo", {"x": 1}, 7, 0, 1, False))
        telemetry = {"points_done": 4, "rss_kb": 1000}
        message = wire.decode(
            wire.encode(wire.record_to_wire(record, telemetry=telemetry))
        )
        assert message["telemetry"] == telemetry
        # The side channel is advisory: decoding the record ignores it.
        restored = wire.record_from_wire(message)
        assert restored.values == record.values

    def test_record_to_wire_omits_telemetry_by_default(self):
        from repro.runner.executors import _execute_point

        record = _execute_point(("echo", {"x": 1}, 7, 0, 1, False))
        assert "telemetry" not in wire.record_to_wire(record)

    def test_worker_attaches_telemetry_to_records(self):
        unit = wire.WorkUnit(
            point="echo", params={"x": 5}, seed=3, index=0, attempt=1
        )
        stdin = io.StringIO(
            wire.encode(unit.to_wire()) + "\n"
            + wire.encode({"op": wire.OP_PING}) + "\n"
        )
        stdout = io.StringIO()
        serve(stdin=stdin, stdout=stdout)
        record_reply, pong = [
            wire.decode(line) for line in stdout.getvalue().splitlines()
        ]
        assert record_reply["op"] == wire.OP_RECORD
        assert record_reply["telemetry"]["points_done"] == 1
        assert record_reply["telemetry"]["rss_kb"] > 0
        assert pong["op"] == wire.OP_PONG
        assert pong["telemetry"]["points_done"] == 1
        assert pong["telemetry"]["wall_s"] >= 0.0
