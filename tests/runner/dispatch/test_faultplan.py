"""Host fault plan tests: validation, CLI parsing, reproducible
sampling, and deterministic trigger evaluation."""

import pytest

from repro.runner.dispatch.faultplan import (
    KILL,
    PARTITION,
    STALL,
    HostFault,
    HostFaultInjector,
    HostFaultPlan,
    parse_host_faults,
    sample_fault_plan,
)


class TestHostFault:
    def test_kill_needs_no_duration(self):
        fault = HostFault(kind=KILL, host=0, at_progress=0.5)
        assert fault.duration == 0

    def test_stall_requires_duration(self):
        with pytest.raises(ValueError, match="duration"):
            HostFault(kind=STALL, host=0, at_progress=0.5)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown host fault kind"):
            HostFault(kind="meteor", host=0, at_progress=0.5)

    def test_progress_bounds(self):
        with pytest.raises(ValueError, match="at_progress"):
            HostFault(kind=KILL, host=0, at_progress=1.5)

    def test_negative_host_rejected(self):
        with pytest.raises(ValueError, match="host index"):
            HostFault(kind=KILL, host=-1, at_progress=0.0)

    def test_label_round_trips_through_parser(self):
        fault = HostFault(kind=PARTITION, host=2, at_progress=0.25, duration=6)
        plan = parse_host_faults(fault.label())
        assert plan.faults == (fault,)


class TestPlanValidation:
    def test_out_of_range_host_rejected(self):
        plan = HostFaultPlan(faults=(HostFault(KILL, host=5, at_progress=0.0),))
        with pytest.raises(ValueError, match="host 5"):
            plan.validate(hosts=3)

    def test_killing_every_host_rejected(self):
        plan = HostFaultPlan(
            faults=tuple(HostFault(KILL, host=h, at_progress=0.0) for h in range(2))
        )
        with pytest.raises(ValueError, match="kills every host"):
            plan.validate(hosts=2)

    def test_killing_some_hosts_allowed(self):
        plan = HostFaultPlan(faults=(HostFault(KILL, host=0, at_progress=0.0),))
        plan.validate(hosts=2)

    def test_empty_plan_label(self):
        assert "no host faults" in HostFaultPlan().label()


class TestParse:
    def test_kill_syntax(self):
        plan = parse_host_faults("kill:1@0.5")
        assert plan.faults == (HostFault(KILL, host=1, at_progress=0.5),)

    def test_multiple_entries_with_durations(self):
        plan = parse_host_faults("stall:0@0.25x6, partition:2@0.5x4")
        assert [f.kind for f in plan.faults] == [STALL, PARTITION]
        assert [f.duration for f in plan.faults] == [6, 4]

    def test_bad_syntax_mentions_format(self):
        with pytest.raises(ValueError, match="kind:host@progress"):
            parse_host_faults("kill-1-0.5")

    def test_bad_kind_surfaces_validation_error(self):
        with pytest.raises(ValueError, match="unknown host fault kind"):
            parse_host_faults("meteor:1@0.5")

    def test_empty_spec_is_empty_plan(self):
        assert len(parse_host_faults("")) == 0


class TestSample:
    def test_deterministic_per_seed(self):
        assert sample_fault_plan(7, hosts=3) == sample_fault_plan(7, hosts=3)

    def test_different_seeds_differ_somewhere(self):
        plans = {sample_fault_plan(seed, hosts=4).label() for seed in range(20)}
        assert len(plans) > 1

    def test_one_host_always_fault_free(self):
        for seed in range(50):
            plan = sample_fault_plan(seed, hosts=3, max_faults=6)
            faulted = {fault.host for fault in plan.faults}
            assert len(faulted) < 3, f"seed {seed} faulted every host"

    def test_single_host_pool_gets_no_faults(self):
        for seed in range(10):
            assert len(sample_fault_plan(seed, hosts=1)) == 0

    def test_sampled_plans_validate(self):
        for seed in range(50):
            sample_fault_plan(seed, hosts=4).validate(hosts=4)


class TestInjector:
    def test_fires_once_at_threshold(self):
        plan = HostFaultPlan(faults=(HostFault(KILL, host=1, at_progress=0.5),))
        injector = HostFaultInjector(plan, total_points=6)
        assert injector.due(acked=2) == []
        fired = injector.due(acked=3)  # ceil(0.5 * 6) == 3
        assert fired == [HostFault(KILL, host=1, at_progress=0.5)]
        assert injector.due(acked=6) == []

    def test_zero_progress_fires_immediately(self):
        plan = HostFaultPlan(faults=(HostFault(KILL, host=0, at_progress=0.0),))
        injector = HostFaultInjector(plan, total_points=10)
        assert len(injector.due(acked=0)) == 1

    def test_ordering_stable(self):
        plan = HostFaultPlan(
            faults=(
                HostFault(STALL, host=2, at_progress=0.2, duration=3),
                HostFault(KILL, host=0, at_progress=0.1),
            )
        )
        injector = HostFaultInjector(plan, total_points=10)
        fired = injector.due(acked=10)
        assert [f.host for f in fired] == [0, 2]
