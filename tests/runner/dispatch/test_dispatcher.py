"""Dispatcher tests: serial equivalence under every fault kind, lease
accounting, budget enforcement, and the deterministic timeline.

Every scenario here is replayable: fault triggers are progress
fractions and heartbeats are counted in steps, so a test asserting "host
1 dies mid-run and its lease is recovered" passes or fails identically
on any machine."""

import json

import pytest

from repro.obs import MetricsRegistry, runtime as obs_runtime
from repro.runner.dispatch import (
    DispatchExecutor,
    HostFault,
    HostFaultPlan,
    LocalHostPool,
    chunk_leases,
    default_chunk_size,
    dispatch_sweep,
    parse_host_faults,
    sample_fault_plan,
)
from repro.runner.dispatch.faultplan import KILL, PARTITION, STALL
from repro.runner.executors import SerialExecutor, SweepExecutionError
from repro.runner.progress import (
    HOST_FAULT,
    HOST_LOST,
    POINT_DONE,
    POINT_RETRY,
    SWEEP_DONE,
    SWEEP_START,
)
from repro.runner.sweep import SweepSpec, make_points


def _spec(n=12, root_seed=3, point="t-square"):
    return SweepSpec(
        name="d",
        root_seed=root_seed,
        points=make_points(root_seed, point, [{"x": i} for i in range(n)]),
    )


def _payload(result):
    """The byte-level determinism payload."""
    return json.dumps(result.values(), sort_keys=True)


class TestLeaseChunking:
    def test_round_robin_assignment(self):
        spec = _spec(n=7)
        grants = chunk_leases(spec.points, hosts=[0, 1, 2], chunk_size=2)
        assert [p.index for p in grants[0]] == [0, 1, 6]
        assert [p.index for p in grants[1]] == [2, 3]
        assert [p.index for p in grants[2]] == [4, 5]

    def test_every_point_granted_exactly_once(self):
        spec = _spec(n=23)
        grants = chunk_leases(spec.points, hosts=[0, 1, 2, 3], chunk_size=3)
        indices = sorted(p.index for leased in grants.values() for p in leased)
        assert indices == list(range(23))

    def test_chunk_size_validation(self):
        with pytest.raises(ValueError):
            chunk_leases((), [0], 0)

    def test_default_chunk_size_quarters_the_share(self):
        assert default_chunk_size(160, hosts=4) == 10
        assert default_chunk_size(3, hosts=8) == 1
        assert default_chunk_size(0, hosts=2) == 1


class TestSerialEquivalence:
    def test_plain_dispatch_matches_serial(self):
        spec = _spec()
        serial = SerialExecutor().run(spec)
        dispatched = dispatch_sweep(spec, hosts=3)
        assert _payload(dispatched) == _payload(serial)
        assert [r.seed for r in dispatched.records] == [
            r.seed for r in serial.records
        ]

    def test_single_host_matches_serial(self):
        spec = _spec(n=5)
        assert _payload(dispatch_sweep(spec, hosts=1)) == _payload(
            SerialExecutor().run(spec)
        )

    def test_kill_mid_run_matches_serial(self):
        spec = _spec()
        serial = SerialExecutor().run(spec)
        result = dispatch_sweep(
            spec, hosts=3, fault_plan=parse_host_faults("kill:1@0.5")
        )
        assert _payload(result) == _payload(serial)
        assert result.metrics.pool_restarts == 1  # one host declared lost

    def test_stall_and_partition_match_serial(self):
        spec = _spec()
        serial = SerialExecutor().run(spec)
        plan = parse_host_faults("stall:0@0.2x6,partition:2@0.4x4")
        result = dispatch_sweep(spec, hosts=3, fault_plan=plan, max_retries=4)
        assert _payload(result) == _payload(serial)

    def test_short_stall_recovers_without_host_loss(self):
        spec = _spec()
        plan = parse_host_faults("stall:1@0.3x2")
        result = dispatch_sweep(spec, hosts=3, fault_plan=plan, heartbeat_misses=4)
        assert _payload(result) == _payload(SerialExecutor().run(spec))
        assert result.metrics.pool_restarts == 0  # stall < miss budget

    def test_long_stall_is_operationally_a_kill(self):
        spec = _spec()
        plan = parse_host_faults("stall:1@0.3x20")
        result = dispatch_sweep(spec, hosts=3, fault_plan=plan, heartbeat_misses=3)
        assert _payload(result) == _payload(SerialExecutor().run(spec))
        assert result.metrics.pool_restarts == 1

    def test_dispatch_is_deterministic_run_to_run(self):
        spec = _spec()
        plan = sample_fault_plan(11, hosts=3)
        a = dispatch_sweep(spec, hosts=3, fault_plan=plan, max_retries=6)
        b = dispatch_sweep(spec, hosts=3, fault_plan=plan, max_retries=6)
        assert _payload(a) == _payload(b)
        assert a.metrics.retries == b.metrics.retries
        assert a.metrics.pool_restarts == b.metrics.pool_restarts


class TestFailurePaths:
    def test_killing_every_host_rejected_up_front(self):
        plan = HostFaultPlan(
            faults=tuple(HostFault(KILL, host=h, at_progress=0.0) for h in range(2))
        )
        with pytest.raises(ValueError, match="kills every host"):
            dispatch_sweep(_spec(), hosts=2, fault_plan=plan)

    def test_budget_exhaustion_surfaces_indices(self):
        spec = SweepSpec(
            name="doomed",
            root_seed=0,
            points=make_points(0, "t-always-fail", [{}]),
        )
        with pytest.raises(SweepExecutionError) as excinfo:
            dispatch_sweep(spec, hosts=2, max_retries=1)
        assert excinfo.value.indices == (0,)

    def test_failing_point_retried_then_raises(self):
        from repro.runner.sweep import SweepPoint, point_seed

        spec = SweepSpec(
            name="mixed",
            root_seed=0,
            points=(
                SweepPoint(0, "t-square", {"x": 1}, point_seed(0, 0)),
                SweepPoint(1, "t-always-fail", {}, point_seed(0, 1)),
            ),
        )
        with pytest.raises(SweepExecutionError) as excinfo:
            dispatch_sweep(spec, hosts=2, max_retries=2)
        assert excinfo.value.indices == (1,)

    def test_flaky_point_recovers_inside_dispatch(self, tmp_path):
        from repro.runner.sweep import SweepPoint, point_seed

        spec = SweepSpec(
            name="flaky",
            root_seed=0,
            points=(
                SweepPoint(
                    0, "t-flaky", {"x": 1, "marker": str(tmp_path / "m")},
                    point_seed(0, 0),
                ),
            ),
        )
        result = dispatch_sweep(spec, hosts=2, max_retries=2)
        assert result.values()[0]["recovered"] is True
        assert result.metrics.retries >= 1

    def test_validation_of_knobs(self):
        with pytest.raises(ValueError):
            DispatchExecutor(hosts=2, max_retries=-1)
        with pytest.raises(ValueError):
            DispatchExecutor(hosts=2, heartbeat_misses=0)
        with pytest.raises(ValueError):
            DispatchExecutor(hosts=2, chunk_size=0)


class TestProgressAndTimeline:
    def test_progress_lifecycle_with_host_loss(self):
        events = []
        spec = _spec()
        dispatch_sweep(
            spec,
            hosts=3,
            fault_plan=parse_host_faults("kill:1@0.5"),
            progress=events.append,
        )
        kinds = [event.kind for event in events]
        assert kinds[0] == SWEEP_START
        assert kinds[-1] == SWEEP_DONE
        assert HOST_FAULT in kinds
        assert HOST_LOST in kinds
        assert kinds.count(POINT_DONE) == len(spec)
        lost = next(e for e in events if e.kind == HOST_LOST)
        assert "host 1" in lost.detail

    def test_timeline_tracks_hosts_and_recovery(self):
        spec = _spec()
        executor = DispatchExecutor(
            hosts=3, fault_plan=parse_host_faults("kill:1@0.5")
        )
        executor.run(spec)
        events = executor.timeline()
        cats = {event.cat for event in events}
        assert {"host:0", "host:1", "host:2", "dispatch"} <= cats
        names = [event.name for event in events]
        assert "fault-kill" in names
        assert "host-lost" in names
        assert "re-lease" in names
        spans = [e for e in events if e.ph == "X"]
        # Every point gets exactly one completed span.
        assert len(spans) == len(spec)

    def test_timeline_is_deterministic(self):
        spec = _spec()
        plan = parse_host_faults("kill:2@0.25,stall:0@0.5x5")
        runs = []
        for _ in range(2):
            executor = DispatchExecutor(hosts=3, fault_plan=plan, max_retries=4)
            executor.run(spec)
            runs.append(
                [(e.time, e.cat, e.name, e.ph) for e in executor.timeline()]
            )
        assert runs[0] == runs[1]

    def test_dispatch_metrics_counted(self):
        registry = MetricsRegistry()
        spec = _spec()
        with obs_runtime.activated(metrics=registry):
            dispatch_sweep(
                spec, hosts=3, fault_plan=parse_host_faults("kill:1@0.5")
            )
        snapshot = registry.snapshot()
        assert snapshot["dispatch.acks"]["values"][""] == len(spec)
        assert snapshot["dispatch.hosts_lost"]["values"][""] == 1
        assert snapshot["dispatch.faults_injected"]["values"][""] == 1
        assert snapshot["dispatch.releases"]["values"][""] >= 1


class TestCaptureMetricsThroughDispatch:
    def test_per_point_snapshots_survive_host_loss(self):
        spec = _spec(n=6)
        result = dispatch_sweep(
            spec,
            hosts=2,
            capture_metrics=True,
            fault_plan=parse_host_faults("kill:0@0.5"),
        )
        assert all(record.metrics is not None for record in result.records)


class TestExternalPool:
    def test_caller_owned_pool_not_closed(self):
        pool = LocalHostPool(2)
        spec = _spec(n=4)
        DispatchExecutor(pool=pool).run(spec)
        # Pool still serviceable: hosts answer idle heartbeats.
        assert all(pool.step(h) is not None for h in pool.host_ids())

    def test_partition_triggers_idle_resync(self):
        spec = _spec(n=8)
        plan = HostFaultPlan(
            faults=(HostFault(PARTITION, host=0, at_progress=0.0, duration=2),)
        )
        result = dispatch_sweep(
            spec, hosts=2, fault_plan=plan, heartbeat_misses=5, max_retries=4
        )
        assert _payload(result) == _payload(SerialExecutor().run(spec))
        # The partitioned host executed work whose acks were lost; those
        # points were re-leased.
        assert result.metrics.retries >= 1
