"""LocalHostPool semantics: the deterministic fault seam the
dispatcher's recovery paths are proven against."""

import pytest

from repro.runner.dispatch.faultplan import KILL, PARTITION, STALL, HostFault
from repro.runner.dispatch.transport import (
    REPLY_ERROR,
    REPLY_IDLE,
    REPLY_RECORD,
    LocalHostPool,
)
from repro.runner.dispatch.wire import WorkUnit
from repro.runner.sweep import point_seed


def _unit(index, x=None, point="t-square", attempt=1):
    params = {"x": x if x is not None else index}
    return WorkUnit(
        point=point, params=params, seed=point_seed(0, index),
        index=index, attempt=attempt,
    )


class TestLocalHostPool:
    def test_host_count_validation(self):
        with pytest.raises(ValueError):
            LocalHostPool(0)

    def test_idle_heartbeat_when_empty(self):
        pool = LocalHostPool(1)
        reply = pool.step(0)
        assert reply is not None and reply.kind == REPLY_IDLE

    def test_executes_queue_in_fifo_order(self):
        pool = LocalHostPool(1)
        pool.submit(0, _unit(0, x=2))
        pool.submit(0, _unit(1, x=3))
        first = pool.step(0)
        second = pool.step(0)
        assert first.kind == REPLY_RECORD and first.record.values["square"] == 4
        assert second.kind == REPLY_RECORD and second.record.values["square"] == 9

    def test_record_worker_is_host_labeled(self):
        pool = LocalHostPool(2)
        pool.submit(1, _unit(0))
        reply = pool.step(1)
        assert reply.record.worker == "host:1"

    def test_point_exception_becomes_error_reply(self):
        pool = LocalHostPool(1)
        pool.submit(0, _unit(3, point="t-always-fail"))
        reply = pool.step(0)
        assert reply.kind == REPLY_ERROR
        assert reply.index == 3
        assert "never succeeds" in reply.error

    def test_killed_host_goes_silent(self):
        pool = LocalHostPool(1)
        pool.submit(0, _unit(0))
        pool.inject(HostFault(KILL, host=0, at_progress=0.0))
        assert pool.step(0) is None
        assert pool.step(0) is None

    def test_submit_to_dead_host_is_lost_in_transit(self):
        pool = LocalHostPool(1)
        pool.inject(HostFault(KILL, host=0, at_progress=0.0))
        pool.submit(0, _unit(0))  # no raise: the lease just vanishes
        assert pool.step(0) is None

    def test_stall_silences_then_resumes_with_queue_intact(self):
        pool = LocalHostPool(1)
        pool.submit(0, _unit(0, x=5))
        pool.inject(HostFault(STALL, host=0, at_progress=0.0, duration=2))
        assert pool.step(0) is None
        assert pool.step(0) is None
        reply = pool.step(0)  # stall over; the lease survived
        assert reply.kind == REPLY_RECORD
        assert reply.record.values["square"] == 25

    def test_partition_executes_but_drops_replies(self):
        pool = LocalHostPool(1)
        pool.submit(0, _unit(0))
        pool.submit(0, _unit(1))
        pool.inject(HostFault(PARTITION, host=0, at_progress=0.0, duration=2))
        assert pool.step(0) is None  # executed index 0, reply lost
        assert pool.step(0) is None  # executed index 1, reply lost
        reply = pool.step(0)  # partition healed, queue now empty
        assert reply.kind == REPLY_IDLE

    def test_discard_is_permanent(self):
        pool = LocalHostPool(2)
        pool.submit(0, _unit(0))
        pool.discard(0)
        assert pool.step(0) is None
        # The other host is unaffected.
        assert pool.step(1).kind == REPLY_IDLE

    def test_close_silences_every_host(self):
        pool = LocalHostPool(3)
        pool.close()
        assert all(pool.step(host) is None for host in pool.host_ids())

    def test_context_manager_closes(self):
        with LocalHostPool(1) as pool:
            assert pool.step(0).kind == REPLY_IDLE
        assert pool.step(0) is None
