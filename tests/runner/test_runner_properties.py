"""Property-based tests (hypothesis) for the runner's determinism
contract: child seeds and aggregated results are independent of how
points are sharded or ordered."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner.dispatch import dispatch_sweep, sample_fault_plan
from repro.runner.executors import SerialExecutor
from repro.runner.sweep import SweepSpec, make_points, merge_records, point_seed

root_seeds = st.integers(min_value=0, max_value=2**63)


class TestChildSeedProperties:
    @given(root_seeds, st.integers(min_value=0, max_value=10_000))
    def test_seed_is_pure_function_of_root_and_index(self, root, index):
        assert point_seed(root, index) == point_seed(root, index)

    @given(root_seeds, st.integers(min_value=1, max_value=300))
    def test_no_collisions_within_a_sweep(self, root, count):
        seeds = [point_seed(root, i) for i in range(count)]
        assert len(set(seeds)) == count

    @given(root_seeds, root_seeds, st.integers(min_value=0, max_value=100))
    def test_roots_give_independent_seeds(self, root_a, root_b, index):
        if root_a != root_b:
            assert point_seed(root_a, index) != point_seed(root_b, index)

    @given(root_seeds, st.integers(min_value=1, max_value=50))
    def test_seeds_independent_of_materialization_order(self, root, count):
        """Seeds depend on the point's index, not on the order the
        work list is built or executed in."""
        forward = {p.index: p.seed for p in make_points(root, "echo", [{}] * count)}
        backward = {
            index: point_seed(root, index) for index in reversed(range(count))
        }
        assert forward == backward


class TestShardingInvariance:
    """Simulate arbitrary shard assignments in-process: run the points
    of one sweep in any order / any partition and check the merged,
    index-ordered records are identical to the canonical serial run."""

    @given(
        root_seeds,
        st.integers(min_value=1, max_value=12),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=25)
    def test_any_execution_order_same_aggregate(self, root, count, rng):
        params = [{"x": i} for i in range(count)]
        spec = SweepSpec(
            name="p", root_seed=root, points=make_points(root, "t-square", params)
        )
        canonical = SerialExecutor().run(spec)

        shuffled_points = list(spec.points)
        rng.shuffle(shuffled_points)
        shuffled = SerialExecutor().run(
            SweepSpec(name="p", root_seed=root, points=tuple(shuffled_points))
        )
        # merge_records re-orders by index, so any execution order
        # yields the same payload sequence.
        assert canonical.values() == shuffled.values()
        assert [r.seed for r in canonical.records] == [
            r.seed for r in shuffled.records
        ]

    @given(
        root_seeds,
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=25)
    def test_any_partition_merges_to_same_records(self, root, count, shards):
        """Executing disjoint shards separately and merging equals the
        one-executor run -- worker count cannot matter."""
        from repro.runner.registry import resolve_point
        from repro.runner.sweep import PointRecord

        params = [{"x": i} for i in range(count)]
        spec = SweepSpec(
            name="p", root_seed=root, points=make_points(root, "t-square", params)
        )
        canonical = SerialExecutor().run(spec)

        def run_point(point):
            # What any worker does: resolve by name, call with the
            # point's own (params, seed); no shared state.
            values = resolve_point(point.point)(point.params, point.seed)
            return PointRecord(
                index=point.index,
                point=point.point,
                params=point.params,
                seed=point.seed,
                values=dict(values),
            )

        shard_records = []
        for shard_index in range(shards):
            for i, point in enumerate(spec.points):
                if i % shards == shard_index:
                    shard_records.append(run_point(point))
        merged = merge_records(shard_records, count)
        assert [r.values for r in merged] == [
            r.values for r in canonical.records
        ]


class TestDispatchInvariance:
    """The distributed dispatcher is just another sharding: whatever the
    host count, chunk size, or fault plan, the merged result must be
    byte-identical to the canonical serial run."""

    @given(
        st.integers(min_value=0, max_value=2**32),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=30, deadline=None)
    def test_dispatch_matches_serial_for_any_topology(
        self, root, count, hosts, chunk_size
    ):
        params = [{"x": i} for i in range(count)]
        spec = SweepSpec(
            name="p", root_seed=root, points=make_points(root, "t-square", params)
        )
        serial = SerialExecutor().run(spec)
        dispatched = dispatch_sweep(spec, hosts=hosts, chunk_size=chunk_size)
        assert json.dumps(dispatched.values(), sort_keys=True) == json.dumps(
            serial.values(), sort_keys=True
        )

    @given(
        st.integers(min_value=0, max_value=2**32),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=30, deadline=None)
    def test_dispatch_matches_serial_under_sampled_faults(
        self, root, count, hosts, fault_seed
    ):
        params = [{"x": i} for i in range(count)]
        spec = SweepSpec(
            name="p", root_seed=root, points=make_points(root, "t-square", params)
        )
        serial = SerialExecutor().run(spec)
        plan = sample_fault_plan(fault_seed, hosts=hosts)
        # A generous retry budget: faults burn attempts, but each point
        # must still land on exactly the same (params, seed) payload.
        dispatched = dispatch_sweep(
            spec, hosts=hosts, fault_plan=plan, max_retries=hosts * 2 + 4
        )
        assert json.dumps(dispatched.values(), sort_keys=True) == json.dumps(
            serial.values(), sort_keys=True
        )
        assert [r.seed for r in dispatched.records] == [
            r.seed for r in serial.records
        ]
