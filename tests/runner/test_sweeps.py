"""Integration tests: the paper's sweeps on the runner.

The headline guarantee -- an identical root seed produces
byte-identical aggregated output at any worker count -- is asserted
here on scaled-down Figure 2 and Figure 3 sweeps (the acceptance
criterion of the sharded-runner work).
"""

import json

import pytest

from repro.cli import main
from repro.runner import build_sweep, render_result, run_sweep
from repro.runner.aggregate import coverage_relative, fig2_grid
from repro.runner.sweeps import SWEEPS, fig2_sweep, fig3_zeus_sweep
from repro.sim.rng import derive_seed

#: Small-but-real sweep settings shared by the equality tests: tiny
#: population, short windows, trimmed axes.
FIG2_SMALL = dict(
    scale="tiny",
    sensors=12,
    announce_hours=1.0,
    measure_hours=3.0,
    thresholds=(0.05, 0.10),
    ratios=(1, 4),
    fleet_size=4,
)
FIG3_SMALL = dict(
    scale="tiny", sensors=4, announce_hours=1.0, hours=3.0, ratios=(1, 4)
)


class TestSweepSpecs:
    def test_fig2_spec_shape(self):
        spec = fig2_sweep(root_seed=5)
        assert spec.name == "fig2"
        assert len(spec) == 15  # 3 thresholds x 5 ratios
        assert spec.aggregator == "fig2"
        # Every cell shares one capture and one detection seed (the
        # paper's replay methodology) ...
        captures = {p.params["capture_seed"] for p in spec.points}
        detections = {p.params["detection_seed"] for p in spec.points}
        assert captures == {derive_seed(5, "fig2-capture")}
        assert detections == {derive_seed(5, "fig2-detection")}
        # ... while per-point child seeds are index-derived.
        assert len({p.seed for p in spec.points}) == len(spec)

    def test_fig3_spec_shape(self):
        spec = fig3_zeus_sweep(root_seed=5, ratios=(1, 2, 4))
        assert [p.params["ratio"] for p in spec.points] == [1, 2, 4]
        assert spec.aggregator == "fig3-zeus"

    def test_build_sweep_unknown_name(self):
        with pytest.raises(KeyError, match="unknown sweep"):
            build_sweep("no-such-sweep")

    def test_registry_covers_fig2_and_fig3(self):
        assert {"fig2", "fig3-zeus", "fig3-sality"} <= set(SWEEPS)

    def test_topology_absent_by_default(self):
        # Flat sweeps' params must not change shape when the topology
        # feature is off (params feed goldens and cache keys).
        for spec in (fig2_sweep(root_seed=5), fig3_zeus_sweep(root_seed=5)):
            assert all("topology" not in p.params for p in spec.points)

    def test_topology_threads_into_every_point(self):
        spec = fig2_sweep(root_seed=5, topology="synth:9")
        assert {p.params["topology"] for p in spec.points} == {"synth:9"}
        spec3 = fig3_zeus_sweep(root_seed=5, topology="synth:9")
        assert {p.params["topology"] for p in spec3.points} == {"synth:9"}


class TestFig2Determinism:
    @pytest.fixture(scope="class")
    def serial_result(self):
        return run_sweep(fig2_sweep(root_seed=11, **FIG2_SMALL), workers=1)

    def test_parallel_matches_serial_byte_identical(self, serial_result):
        parallel = run_sweep(fig2_sweep(root_seed=11, **FIG2_SMALL), workers=2)
        # Deterministic payloads are identical record by record ...
        assert serial_result.values() == parallel.values()
        # ... and so are the rendered exhibit and the JSON encoding,
        # byte for byte.
        assert render_result(serial_result) == render_result(parallel)
        assert json.dumps(serial_result.values(), sort_keys=True) == json.dumps(
            parallel.values(), sort_keys=True
        )

    def test_rerun_is_bit_stable(self, serial_result):
        again = run_sweep(fig2_sweep(root_seed=11, **FIG2_SMALL), workers=1)
        assert serial_result.values() == again.values()

    def test_different_root_seed_changes_capture(self, serial_result):
        other = run_sweep(fig2_sweep(root_seed=12, **FIG2_SMALL), workers=1)
        assert serial_result.values() != other.values()

    def test_full_contact_detects_most_crawlers(self, serial_result):
        grid = fig2_grid(serial_result)
        for threshold in FIG2_SMALL["thresholds"]:
            assert grid[(threshold, 1)]["detection_rate"] >= grid[
                (threshold, FIG2_SMALL["ratios"][-1])
            ]["detection_rate"]


class TestFig3Determinism:
    def test_parallel_matches_serial(self):
        serial = run_sweep(fig3_zeus_sweep(root_seed=7, **FIG3_SMALL), workers=1)
        parallel = run_sweep(fig3_zeus_sweep(root_seed=7, **FIG3_SMALL), workers=2)
        assert serial.values() == parallel.values()
        assert render_result(serial) == render_result(parallel)
        relative = coverage_relative(serial)
        assert relative["1/1"] == 1.0
        assert relative["1/4"] <= 1.0


class TestSweepCli:
    def test_list(self, capsys):
        assert main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert "fig2" in out and "fig3-zeus" in out

    def test_missing_name_errors(self, capsys):
        assert main(["sweep"]) == 2

    def test_fig2_text_output_deterministic(self, capsys):
        argv = [
            "sweep", "fig2", "--seed", "4", "--ratios", "1", "2", "--no-progress"
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "Figure 2" in first
        assert first == second

    def test_json_output(self, capsys):
        argv = [
            "sweep", "fig3-zeus", "--seed", "4", "--ratios", "1",
            "--json", "--no-progress",
        ]
        assert main(argv) == 0
        records = json.loads(capsys.readouterr().out)
        assert records[0]["ratio"] == 1
        assert records[0]["distinct_ips"] > 0
