"""Tests for sweep health indicators and record merging with mixed
per-point metrics capture (some points carry snapshots, some don't)."""

import pytest

from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.runner import (
    PointRecord,
    SweepMetrics,
    SweepPoint,
    SweepResult,
    SweepSpec,
    merge_records,
    point_indicators,
    render_sweep_health,
    sweep_health,
)


def _snapshot(sent):
    reg = MetricsRegistry()
    reg.counter("net.sent").inc(sent)
    reg.gauge("sched.peak_heap").set(sent * 2)
    return reg.snapshot()


def _record(index, metrics=None, sent=0):
    return PointRecord(
        index=index,
        point="cell",
        params={"ratio": index},
        seed=index * 7,
        values={"coverage": 0.5},
        wall_time=0.01,
        metrics=_snapshot(sent) if metrics else None,
    )


def _result(records, workers=2):
    spec = SweepSpec(
        name="mixed",
        root_seed=0,
        points=tuple(
            SweepPoint(index=r.index, point=r.point, params=r.params, seed=r.seed)
            for r in records
        ),
    )
    metrics = SweepMetrics(
        workers=workers, points_total=len(records),
        points_completed=len(records), wall_time=1.0,
    )
    return SweepResult(spec=spec, records=list(records), metrics=metrics)


class TestMergeRecords:
    def test_orders_by_index(self):
        records = [_record(2), _record(0), _record(1)]
        merged = merge_records(records, expected=3)
        assert [r.index for r in merged] == [0, 1, 2]

    def test_duplicate_index_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            merge_records([_record(0), _record(0)], expected=2)

    def test_missing_index_rejected(self):
        with pytest.raises(ValueError, match="missing points \\[1\\]"):
            merge_records([_record(0), _record(2)], expected=3)

    def test_mixed_metrics_survive_merge(self):
        # Records merged from pre-capture runs (metrics=None) coexist
        # with captured ones; the merge keeps each record's snapshot.
        records = [_record(1), _record(0, metrics=True, sent=5)]
        merged = merge_records(records, expected=2)
        assert merged[0].metrics is not None
        assert merged[1].metrics is None

    def test_merged_snapshot_ignores_uncaptured_points(self):
        records = merge_records(
            [_record(0, metrics=True, sent=5), _record(1), _record(2, metrics=True, sent=3)],
            expected=3,
        )
        merged = merge_snapshots(r.metrics for r in records if r.metrics is not None)
        assert merged["net.sent"]["values"][""] == 8  # counters sum
        assert merged["sched.peak_heap"]["values"][""] == 10  # gauges max


class TestPointIndicators:
    def test_none_without_metrics(self):
        assert point_indicators(_record(0)) is None

    def test_flattens_snapshot(self):
        flat = point_indicators(_record(0, metrics=True, sent=4))
        assert flat["net.sent"] == 4
        assert flat["sched.peak_heap"] == 8


class TestSweepHealth:
    def test_mixed_capture_counts(self):
        result = _result([_record(0, metrics=True, sent=5), _record(1)])
        health = sweep_health(result)
        assert health["schema"] == "repro-sweep-health/1"
        assert health["points"] == 2
        assert health["points_with_metrics"] == 1
        assert health["indicators"]["net.sent"] == 5
        assert health["per_point"]["0"]["net.sent"] == 5
        assert health["per_point"]["1"] is None

    def test_indicators_merge_across_points(self):
        result = _result([_record(0, metrics=True, sent=5), _record(1, metrics=True, sent=3)])
        health = sweep_health(result)
        assert health["indicators"]["net.sent"] == 8
        assert health["indicators"]["sched.peak_heap"] == 10

    def test_execution_metadata(self):
        health = sweep_health(_result([_record(0)], workers=3))
        assert health["execution"]["workers"] == 3
        assert health["execution"]["wall_time"] == 1.0

    def test_render_without_capture_points_at_flag(self):
        text = render_sweep_health(_result([_record(0), _record(1)]))
        assert "0/2 points captured metrics" in text
        assert "--metrics" in text

    def test_render_shows_key_indicators_and_spread(self):
        result = _result([_record(0, metrics=True, sent=5), _record(1, metrics=True, sent=3)])
        text = render_sweep_health(result)
        assert "2/2 points captured metrics" in text
        assert "net.sent" in text
        assert "widest per-point spread" in text
