"""Test-suite configuration: hypothesis profiles.

Profiles are selected with ``HYPOTHESIS_PROFILE=<name> pytest ...``:

* ``default`` -- hypothesis defaults (local development).
* ``ci`` -- derandomized with a bounded example budget, so CI runs
  are reproducible and fast; the property jobs in the GitHub Actions
  workflow pin this profile.
* ``thorough`` -- a larger randomized budget for occasional deep
  local runs.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile("default", settings())
settings.register_profile(
    "ci",
    derandomize=True,
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("thorough", max_examples=500, deadline=None)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
