"""Golden-output regression tests.

Each test renders an exhibit and compares it byte-for-byte against a
committed snapshot under ``tests/golden/goldens/``.  A formatting or
determinism regression anywhere in the pipeline (scenario build, sim,
detection, rendering) shows up as a golden diff.

To refresh snapshots after an *intentional* change::

    UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/golden -q

then review the diff and commit the updated files.
"""

import os
import pathlib

import pytest

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"


def _check_golden(name: str, text: str) -> None:
    path = GOLDEN_DIR / name
    if os.environ.get("UPDATE_GOLDENS"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text + "\n")
        pytest.skip(f"golden {name} regenerated")
    if not path.exists():
        raise AssertionError(
            f"missing golden {path}; run with UPDATE_GOLDENS=1 to create it"
        )
    assert text + "\n" == path.read_text(), (
        f"exhibit diverged from golden {name}; if the change is intended, "
        "regenerate with UPDATE_GOLDENS=1 and commit the diff"
    )


def test_table1_golden():
    from repro.analysis.tables import render_table1

    _check_golden("table1_antirecon.txt", render_table1())


@pytest.fixture(scope="module")
def fig2_small_result():
    """A small-population Figure 2 sweep, fully pinned by root seed 0."""
    from repro.runner import build_sweep, run_sweep

    spec = build_sweep(
        "fig2",
        root_seed=0,
        scale="tiny",
        sensors=16,
        announce_hours=1.0,
        measure_hours=4.0,
        thresholds=(0.05, 0.10),
        ratios=(1, 2, 4),
        fleet_size=6,
    )
    return run_sweep(spec, workers=1)


def test_fig2_small_rendered_golden(fig2_small_result):
    from repro.runner import render_result

    _check_golden("fig2_small_sweep.txt", render_result(fig2_small_result))


def test_fig2_small_values_golden(fig2_small_result):
    import json

    text = json.dumps(fig2_small_result.values(), indent=2, sort_keys=True)
    _check_golden("fig2_small_values.json", text)


def test_fig2_small_dispatched_with_host_kill_matches_golden():
    """The same fig2 sweep dispatched across 3 simulated hosts -- one of
    which is killed at 50% progress -- must reproduce the committed
    golden bytes exactly.  Host placement, chunking, and failure
    recovery are not allowed to leak into the exhibit."""
    from repro.runner import (
        DispatchExecutor,
        build_sweep,
        parse_host_faults,
        render_result,
    )

    spec = build_sweep(
        "fig2",
        root_seed=0,
        scale="tiny",
        sensors=16,
        announce_hours=1.0,
        measure_hours=4.0,
        thresholds=(0.05, 0.10),
        ratios=(1, 2, 4),
        fleet_size=6,
    )
    executor = DispatchExecutor(
        hosts=3, fault_plan=parse_host_faults("kill:1@0.5")
    )
    result = executor.run(spec)
    assert result.metrics.pool_restarts == 1  # the kill really happened
    _check_golden("fig2_small_sweep.txt", render_result(result))


def test_fig3_zeus_small_rendered_golden():
    from repro.runner import build_sweep, render_result, run_sweep

    spec = build_sweep(
        "fig3-zeus",
        root_seed=0,
        scale="tiny",
        sensors=4,
        announce_hours=1.0,
        hours=3.0,
        ratios=(1, 2, 4),
    )
    result = run_sweep(spec, workers=1)
    _check_golden("fig3_zeus_small_sweep.txt", render_result(result))
