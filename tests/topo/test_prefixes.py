"""Prefix allocation: coverage, determinism, and lookup consistency."""

import pytest

from repro.net.address import Subnet
from repro.topo.asgraph import synth_topology
from repro.topo.prefixes import PrefixAllocator

BLOCKS = (Subnet.parse("10.0.0.0/12"), Subnet.parse("25.0.0.0/14"))


def _allocator(seed=3, chunk_prefix=16):
    return PrefixAllocator(
        synth_topology(16, seed=1), BLOCKS, seed=seed, chunk_prefix=chunk_prefix
    )


class TestAllocation:
    def test_every_chunk_assigned(self):
        alloc = _allocator()
        expected = sum(2 ** (alloc.chunk_prefix - b.prefix) for b in BLOCKS)
        assert alloc.chunk_total == expected

    def test_as_of_consistent_with_chunks_of(self):
        alloc = _allocator()
        for asn in alloc.graph.ases:
            for chunk in alloc.chunks_of(asn):
                assert alloc.as_of(chunk.network) == asn
                assert alloc.as_of(chunk.network + 7) == asn

    def test_unallocated_space_is_none(self):
        alloc = _allocator()
        from repro.net.address import parse_ip

        assert alloc.as_of(parse_ip("200.1.2.3")) is None

    def test_same_seed_same_allocation(self):
        a, b = _allocator(seed=9), _allocator(seed=9)
        for asn in a.graph.ases:
            assert a.chunks_of(asn) == b.chunks_of(asn)

    def test_different_seed_differs(self):
        a, b = _allocator(seed=9), _allocator(seed=10)
        assert any(
            a.chunks_of(asn) != b.chunks_of(asn) for asn in a.graph.ases
        )

    def test_chunk_prefix_clamped_to_block(self):
        # A /14 block cannot be chunked at /12; the allocator widens
        # the chunk prefix to the narrowest block instead of failing.
        alloc = _allocator(chunk_prefix=12)
        assert alloc.chunk_prefix == 14

    def test_largest_as_deterministic_with_exclusions(self):
        alloc = _allocator()
        top = alloc.largest_as()
        runner_up = alloc.largest_as(exclude=(top,))
        assert runner_up != top
        assert alloc.chunk_count(top) >= alloc.chunk_count(runner_up)

    def test_largest_as_all_excluded(self):
        alloc = _allocator()
        with pytest.raises(ValueError, match="no candidate"):
            alloc.largest_as(exclude=tuple(alloc.graph.ases))

    def test_empty_blocks_rejected(self):
        with pytest.raises(ValueError, match="block"):
            PrefixAllocator(synth_topology(4, seed=1), (), seed=0)

    def test_summary_covers_every_as(self):
        alloc = _allocator()
        assert len(alloc.summary()) == len(alloc.graph.ases)
