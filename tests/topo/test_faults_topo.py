"""AS-aware fault surfaces: ASPartition and RoutedSinkhole."""

import random

import pytest

from repro.faults.injector import FaultyTransport
from repro.faults.plan import ASPartition, FaultPlan, RoutedSinkhole
from repro.net.address import Subnet, parse_ip
from repro.net.transport import Endpoint, TransportConfig
from repro.sim.scheduler import Scheduler
from repro.topo import Topology, TopologyConfig

BLOCKS = [Subnet.parse("10.0.0.0/12"), Subnet.parse("25.0.0.0/14")]
QUIET = TransportConfig(latency_min=0.01, latency_max=0.05, loss_rate=0.0)


def _topo(seed=2):
    return Topology.build(TopologyConfig(seed=seed, n_ases=16), BLOCKS)


def _endpoints_in(topology, asn, count=2, port=5000):
    """Endpoints whose addresses the allocator maps to ``asn``."""
    chunks = topology.allocator.chunks_of(asn)
    assert chunks, f"AS{asn} holds no prefixes"
    return [Endpoint(chunks[0].network + i + 1, port + i) for i in range(count)]


def _faulty(plan, topology, seed=0):
    sched = Scheduler()
    transport = FaultyTransport(
        sched,
        random.Random(seed),
        plan=plan,
        fault_rng=random.Random(seed + 1000),
        config=QUIET,
        topology=topology,
    )
    return sched, transport


def _exchange(sched, transport, src, dst, count=20):
    inbox = []
    transport.bind(dst, inbox.append)
    transport.bind(src, lambda m: None)
    for _ in range(count):
        transport.send(src, dst, b"x")
    sched.run()
    return inbox


class TestASPartition:
    def test_detach_separates_cone_from_outside(self):
        topology = _topo()
        target = topology.allocator.largest_as(
            exclude=topology.graph.tier_ones()
        )
        cone = topology.graph.customer_cone(target)
        outside = next(a for a in topology.graph.ases if a not in cone)
        inside_ep = _endpoints_in(topology, target)[0]
        outside_ep = _endpoints_in(topology, outside, port=6000)[0]
        plan = FaultPlan(
            name="cut",
            as_partitions=(ASPartition(start=0.0, duration=1e9, detach=target),),
        )
        sched, transport = _faulty(plan, topology)
        assert _exchange(sched, transport, outside_ep, inside_ep) == []
        assert transport.fault_stats.dropped_as_partition == 20

    def test_detach_keeps_intra_cone_traffic(self):
        topology = _topo()
        target = topology.allocator.largest_as(
            exclude=topology.graph.tier_ones()
        )
        a, b = _endpoints_in(topology, target, count=2)
        plan = FaultPlan(
            name="cut",
            as_partitions=(ASPartition(start=0.0, duration=1e9, detach=target),),
        )
        sched, transport = _faulty(plan, topology)
        assert len(_exchange(sched, transport, a, b)) == 20

    def test_inactive_window_passes(self):
        topology = _topo()
        target = topology.allocator.largest_as(
            exclude=topology.graph.tier_ones()
        )
        cone = topology.graph.customer_cone(target)
        outside = next(a for a in topology.graph.ases if a not in cone)
        plan = FaultPlan(
            name="later",
            as_partitions=(
                ASPartition(start=1e6, duration=10.0, detach=target),
            ),
        )
        sched, transport = _faulty(plan, topology)
        inbox = _exchange(
            sched,
            transport,
            _endpoints_in(topology, outside, port=6000)[0],
            _endpoints_in(topology, target)[0],
        )
        assert len(inbox) == 20

    def test_cut_links_variant(self):
        topology = _topo()
        # Cut every link of a stub AS: unreachable from anywhere else.
        stub = next(
            a
            for a in topology.graph.ases
            if not topology.graph.customers[a]
            and topology.allocator.chunk_count(a)
        )
        links = tuple((p, stub) for p in topology.graph.providers[stub]) + tuple(
            (p, stub) for p in topology.graph.peers[stub]
        )
        other = next(
            a
            for a in topology.graph.ases
            if a != stub and topology.allocator.chunk_count(a)
        )
        plan = FaultPlan(
            name="depeer",
            as_partitions=(
                ASPartition(start=0.0, duration=1e9, cut_links=links),
            ),
        )
        sched, transport = _faulty(plan, topology)
        inbox = _exchange(
            sched,
            transport,
            _endpoints_in(topology, other, port=6000)[0],
            _endpoints_in(topology, stub)[0],
        )
        assert inbox == []
        assert transport.fault_stats.dropped_as_partition == 20

    def test_plan_without_topology_rejected(self):
        plan = FaultPlan(
            name="cut",
            as_partitions=(ASPartition(start=0.0, duration=1.0, detach=3),),
        )
        sched = Scheduler()
        with pytest.raises(ValueError, match="topology"):
            FaultyTransport(
                sched,
                random.Random(0),
                plan=plan,
                fault_rng=random.Random(1),
                config=QUIET,
            )

    def test_partition_needs_a_cut(self):
        with pytest.raises(ValueError):
            ASPartition(start=0.0, duration=1.0)


class TestRoutedSinkhole:
    def _sinkhole_setup(self, start=0.0):
        topology = _topo()
        prefix = Subnet.parse("25.0.0.0/16")
        collector = Endpoint(parse_ip("46.0.0.1"), 5353)
        plan = FaultPlan(
            name="hijack",
            sinkholes=(
                RoutedSinkhole(
                    start=start,
                    duration=1e9,
                    prefix=prefix,
                    target_ip=collector.ip,
                    target_port=collector.port,
                ),
            ),
        )
        sched, transport = _faulty(plan, topology)
        victim = Endpoint(prefix.network + 9, 7000)
        src = Endpoint(BLOCKS[0].network + 1, 7001)
        return sched, transport, src, victim, collector

    def test_hijacked_prefix_redirects(self):
        sched, transport, src, victim, collector = self._sinkhole_setup()
        collected = []
        victim_inbox = []
        transport.bind(collector, collected.append)
        transport.bind(victim, victim_inbox.append)
        transport.bind(src, lambda m: None)
        for _ in range(15):
            transport.send(src, victim, b"x")
        sched.run()
        assert victim_inbox == []
        assert len(collected) == 15
        assert transport.fault_stats.sinkholed == 15

    def test_traffic_outside_prefix_untouched(self):
        sched, transport, src, _, collector = self._sinkhole_setup()
        other = Endpoint(BLOCKS[0].network + 99, 7002)
        inbox = []
        transport.bind(other, inbox.append)
        transport.bind(src, lambda m: None)
        transport.bind(collector, lambda m: None)
        for _ in range(10):
            transport.send(src, other, b"x")
        sched.run()
        assert len(inbox) == 10
        assert transport.fault_stats.sinkholed == 0

    def test_inactive_sinkhole_passes(self):
        sched, transport, src, victim, collector = self._sinkhole_setup(
            start=1e6
        )
        inbox = []
        transport.bind(victim, inbox.append)
        transport.bind(src, lambda m: None)
        transport.bind(collector, lambda m: None)
        for _ in range(10):
            transport.send(src, victim, b"x")
        sched.run()
        assert len(inbox) == 10

    def test_matches(self):
        hole = RoutedSinkhole(
            start=0.0,
            duration=1.0,
            prefix=Subnet.parse("25.0.0.0/16"),
            target_ip=parse_ip("46.0.0.1"),
            target_port=5353,
        )
        assert hole.matches(parse_ip("25.0.200.7"))
        assert not hole.matches(parse_ip("25.1.0.7"))


class TestComposition:
    def test_sinkhole_composes_with_as_cut(self):
        topology = _topo()
        target = topology.allocator.largest_as(
            exclude=topology.graph.tier_ones()
        )
        plan = FaultPlan(
            name="combo",
            as_partitions=(ASPartition(start=0.0, duration=1e9, detach=target),),
            sinkholes=(
                RoutedSinkhole(
                    start=0.0,
                    duration=1e9,
                    prefix=Subnet.parse("25.0.0.0/16"),
                    target_ip=parse_ip("46.0.0.1"),
                    target_port=5353,
                ),
            ),
        )
        assert "combo" in plan.describe()
        sched, transport = _faulty(plan, topology)
        assert transport.fault_stats.sinkholed == 0  # built, not fired
