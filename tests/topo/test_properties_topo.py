"""Hypothesis properties for the topology layer.

The two invariants everything else leans on:

* **Determinism** -- one (spec, seed) pair fully determines the graph,
  the prefix allocation, every resolved path, and every drawn latency.
* **Flat equivalence** -- configuring a topology never changes how the
  population is laid out (same endpoints, same peers); only delivery
  timing and fault surfaces differ.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.botnets.zeus.network import ZeusNetwork
from repro.net.address import Subnet
from repro.topo import Topology, TopologyConfig
from repro.topo.asgraph import synth_topology
from repro.topo.routing import PathResolver, is_valley_free
from repro.workloads.population import zeus_config

BLOCKS = [Subnet.parse("10.0.0.0/12"), Subnet.parse("25.0.0.0/14")]

seeds = st.integers(min_value=0, max_value=2**31 - 1)
sizes = st.integers(min_value=1, max_value=48)


class TestGraphProperties:
    @given(seeds, sizes)
    @settings(max_examples=25, deadline=None)
    def test_synth_deterministic_and_connected(self, seed, n):
        a = synth_topology(n, seed)
        b = synth_topology(n, seed)
        assert a.edges() == b.edges()
        assert a.is_connected()

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_all_paths_valley_free(self, seed):
        graph = synth_topology(20, seed)
        resolver = PathResolver(graph)
        for src in graph.ases:
            for dst in graph.ases:
                path = resolver.path(src, dst)
                assert path is not None
                assert is_valley_free(graph, path)

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_customer_cone_closed_under_customers(self, seed):
        graph = synth_topology(24, seed)
        for asn in graph.ases:
            cone = graph.customer_cone(asn)
            for member in cone:
                assert graph.customers[member] <= cone


class TestTopologyDeterminism:
    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_same_seed_same_paths_and_latencies(self, seed):
        config = TopologyConfig(seed=seed, n_ases=12)
        a = Topology.build(config, BLOCKS)
        b = Topology.build(config, BLOCKS)
        assert a.graph.edges() == b.graph.edges()
        for asn in a.graph.ases:
            assert a.allocator.chunks_of(asn) == b.allocator.chunks_of(asn)
        pairs = [(s, d) for s in a.graph.ases for d in a.graph.ases]
        assert [a.resolver.path(*p) for p in pairs] == [
            b.resolver.path(*p) for p in pairs
        ]
        model_a = a.latency_model(random.Random(7))
        model_b = b.latency_model(random.Random(7))
        probes = [
            (BLOCKS[0].network + i * 31, BLOCKS[1].network + i * 53)
            for i in range(64)
        ]
        assert [model_a.latency(*p) for p in probes] == [
            model_b.latency(*p) for p in probes
        ]


class TestFlatEquivalence:
    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=4, deadline=None)
    def test_topology_never_moves_endpoints(self, master_seed):
        flat = ZeusNetwork(zeus_config("tiny", master_seed=master_seed))
        flat.build()
        topo = ZeusNetwork(
            zeus_config("tiny", master_seed=master_seed, topology="synth:7")
        )
        topo.build()
        assert [b.endpoint for b in flat.bots.values()] == [
            b.endpoint for b in topo.bots.values()
        ]
        assert list(flat.bots) == list(topo.bots)
