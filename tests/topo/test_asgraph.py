"""AS graph: loader, synthesis, and structural queries."""

import pytest

from repro.topo.asgraph import P2C, P2P, ASGraph, load_as_rel2, synth_topology

REL2_SAMPLE = """\
# CAIDA-style serial-2 AS relationships
# provider|customer|-1  /  peer|peer|0
1|2|-1
1|3|-1
2|4|-1
3|4|-1
2|3|0

1|5|-1|bgp
"""


class TestLoader:
    def test_loads_links_and_skips_comments(self):
        graph = load_as_rel2(REL2_SAMPLE.splitlines())
        assert graph.ases == [1, 2, 3, 4, 5]
        assert 2 in graph.customers[1]
        assert 1 in graph.providers[2]
        assert 3 in graph.peers[2] and 2 in graph.peers[3]

    def test_fourth_field_ignored(self):
        graph = load_as_rel2(REL2_SAMPLE.splitlines())
        assert 5 in graph.customers[1]

    def test_rejects_bad_relationship(self):
        with pytest.raises(ValueError, match="relationship"):
            load_as_rel2(["1|2|7"])

    def test_rejects_malformed_line(self):
        with pytest.raises(ValueError, match="expected"):
            load_as_rel2(["1|2"])

    def test_loads_from_path(self, tmp_path):
        path = tmp_path / "sample.as-rel2"
        path.write_text(REL2_SAMPLE)
        graph = load_as_rel2(str(path))
        assert graph.ases == load_as_rel2(REL2_SAMPLE.splitlines()).ases


class TestGraphOps:
    def _diamond(self):
        graph = ASGraph()
        graph.add_link(1, 2, P2C)
        graph.add_link(1, 3, P2C)
        graph.add_link(2, 4, P2C)
        graph.add_link(3, 4, P2C)
        graph.add_link(2, 3, P2P)
        return graph

    def test_customer_cone_includes_multihomed(self):
        graph = self._diamond()
        assert graph.customer_cone(2) == {2, 4}
        assert graph.customer_cone(1) == {1, 2, 3, 4}

    def test_tier_ones(self):
        assert self._diamond().tier_ones() == [1]

    def test_without_links_is_a_copy(self):
        graph = self._diamond()
        cut = graph.without_links([(2, 4)])
        assert 4 not in cut.customers[2]
        assert 4 in graph.customers[2]  # original untouched

    def test_remove_link_symmetric(self):
        graph = self._diamond()
        graph.remove_link(2, 3)
        assert 3 not in graph.peers[2] and 2 not in graph.peers[3]

    def test_edges_canonical_across_insertion_order(self):
        graph = ASGraph()
        # Same diamond, different insertion order.
        graph.add_link(2, 3, P2P)
        graph.add_link(3, 4, P2C)
        graph.add_link(1, 3, P2C)
        graph.add_link(2, 4, P2C)
        graph.add_link(1, 2, P2C)
        assert graph.edges() == self._diamond().edges()

    def test_is_connected(self):
        graph = self._diamond()
        assert graph.is_connected()
        graph.add_as(99)
        assert not graph.is_connected()


class TestSynth:
    def test_same_seed_same_graph(self):
        assert synth_topology(24, seed=5).edges() == synth_topology(24, seed=5).edges()

    def test_different_seed_different_graph(self):
        assert synth_topology(24, seed=5).edges() != synth_topology(24, seed=6).edges()

    @pytest.mark.parametrize("n", [1, 2, 8, 32, 64])
    def test_connected_at_all_sizes(self, n):
        graph = synth_topology(n, seed=1)
        assert len(graph.ases) == n
        assert graph.is_connected()

    def test_core_is_tier_one(self):
        graph = synth_topology(32, seed=3)
        for asn in graph.tier_ones():
            assert not graph.providers[asn]
