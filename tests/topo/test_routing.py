"""Valley-free path resolution: Gao-Rexford preference and caching."""

from repro.topo.asgraph import P2C, P2P, ASGraph, synth_topology
from repro.topo.routing import PathResolver, is_valley_free


def _diamond():
    """1 is tier-1; 2 and 3 buy transit from 1 and peer; 4 buys from both."""
    graph = ASGraph()
    graph.add_link(1, 2, P2C)
    graph.add_link(1, 3, P2C)
    graph.add_link(2, 4, P2C)
    graph.add_link(3, 4, P2C)
    graph.add_link(2, 3, P2P)
    return graph


class TestResolution:
    def test_self_path(self):
        assert PathResolver(_diamond()).path(2, 2) == (2,)

    def test_customer_route_preferred_over_peer(self):
        # From 2 to 4: the direct customer link beats any detour.
        assert PathResolver(_diamond()).path(2, 4) == (2, 4)

    def test_peer_route_preferred_over_provider(self):
        # From 2 to 3: the peer link beats going up through 1.
        assert PathResolver(_diamond()).path(2, 3) == (2, 3)

    def test_up_then_down(self):
        graph = ASGraph()
        graph.add_link(1, 2, P2C)
        graph.add_link(1, 3, P2C)
        resolver = PathResolver(graph)
        assert resolver.path(2, 3) == (2, 1, 3)

    def test_no_valley_through_customer(self):
        # Two providers sharing a customer do NOT get transit through
        # it: 2 -> 4 -> 3 would be a valley.
        graph = ASGraph()
        graph.add_link(2, 4, P2C)
        graph.add_link(3, 4, P2C)
        resolver = PathResolver(graph)
        assert resolver.path(2, 3) is None

    def test_peer_link_used_at_most_once(self):
        graph = ASGraph()
        graph.add_link(1, 2, P2P)
        graph.add_link(2, 3, P2P)
        resolver = PathResolver(graph)
        assert resolver.path(1, 3) is None

    def test_unknown_as_unreachable(self):
        resolver = PathResolver(_diamond())
        assert resolver.path(2, 99) is None
        assert not resolver.reachable(99, 2)

    def test_hops(self):
        resolver = PathResolver(_diamond())
        assert resolver.hops(2, 4) == 1
        assert resolver.hops(4, 4) == 0
        assert resolver.hops(2, 99) is None


class TestCache:
    def test_memoization_counters(self):
        resolver = PathResolver(_diamond())
        resolver.path(2, 4)
        hits, misses = resolver.cache_stats()
        assert (hits, misses) == (0, 1)
        resolver.path(2, 4)
        assert resolver.cache_stats() == (1, 1)
        # Same-source pair: filled by the first Dijkstra, so a hit.
        resolver.path(2, 3)
        assert resolver.cache_stats() == (2, 1)

    def test_full_mesh_resolves_valley_free(self):
        graph = synth_topology(24, seed=4)
        resolver = PathResolver(graph)
        for src in graph.ases:
            for dst in graph.ases:
                path = resolver.path(src, dst)
                assert path is not None, (src, dst)
                assert path[0] == src and path[-1] == dst
                assert is_valley_free(graph, path)

    def test_cut_topology_loses_reachability(self):
        graph = ASGraph()
        graph.add_link(1, 2, P2C)
        graph.add_link(1, 3, P2C)
        cut = graph.without_links([(1, 3)])
        assert PathResolver(graph).reachable(2, 3)
        assert not PathResolver(cut).reachable(2, 3)


class TestDeterminism:
    def test_resolution_independent_of_query_order(self):
        graph = synth_topology(20, seed=8)
        forward = PathResolver(graph)
        backward = PathResolver(graph)
        pairs = [(s, d) for s in graph.ases for d in graph.ases]
        a = {p: forward.path(*p) for p in pairs}
        b = {p: backward.path(*p) for p in reversed(pairs)}
        assert a == b
