"""Latency model and topology spec parsing/building."""

import random

import pytest

from repro.net.address import Subnet, parse_ip
from repro.topo import (
    DEFAULT_N_ASES,
    Topology,
    TopologyConfig,
    TopologyLatencyModel,
    parse_topology,
)

BLOCKS = [Subnet.parse("10.0.0.0/12"), Subnet.parse("25.0.0.0/14")]


def _topo(seed=2):
    return Topology.build(TopologyConfig(seed=seed, n_ases=16), BLOCKS)


class TestSpecParsing:
    def test_flat_forms(self):
        assert parse_topology(None) is None
        assert parse_topology("") is None
        assert parse_topology("flat") is None

    def test_synth(self):
        config = parse_topology("synth:7")
        assert (config.source, config.seed, config.n_ases) == (
            "synth", 7, DEFAULT_N_ASES,
        )
        assert parse_topology("synth:7:48").n_ases == 48

    def test_asrel(self):
        config = parse_topology("asrel:/data/x.as-rel2:5")
        assert (config.source, config.path, config.seed) == (
            "asrel", "/data/x.as-rel2", 5,
        )
        assert parse_topology("asrel:/data/x.as-rel2").seed == 0

    def test_spec_round_trip(self):
        for spec in ("synth:7:48", "asrel:/data/x.as-rel2:5"):
            assert parse_topology(spec).spec == spec

    def test_config_passthrough(self):
        config = TopologyConfig(seed=1)
        assert parse_topology(config) is config

    def test_bad_specs(self):
        for bad in ("synth", "synth:x", "mesh:3", "asrel:"):
            with pytest.raises(ValueError):
                parse_topology(bad)


class TestLatencyModel:
    def test_mapped_pair_latency_shape(self):
        topo = _topo()
        model = topo.latency_model(random.Random(5))
        src = BLOCKS[0].network + 1
        dst = BLOCKS[1].network + 1
        hops = model.as_hops(src, dst)
        assert hops is not None
        value = model.latency(src, dst)
        floor = model.base + model.per_hop * hops
        assert floor <= value <= floor + model.jitter
        assert model.sends == 1 and model.fallback_sends == 0

    def test_unmapped_falls_back_to_uniform(self):
        topo = _topo()
        model = topo.latency_model(random.Random(5))
        junk = parse_ip("203.0.113.9")
        value = model.latency(BLOCKS[0].network + 1, junk)
        low, high = model.fallback
        assert low <= value <= high
        assert model.fallback_sends == 1

    def test_same_rng_same_latencies(self):
        topo = _topo()
        pairs = [
            (BLOCKS[0].network + i, BLOCKS[1].network + i * 17) for i in range(50)
        ]
        a = topo.latency_model(random.Random(9))
        b = _topo().latency_model(random.Random(9))
        assert [a.latency(*p) for p in pairs] == [b.latency(*p) for p in pairs]

    def test_rejects_negative_components(self):
        topo = _topo()
        with pytest.raises(ValueError):
            TopologyLatencyModel(
                topo.resolver, topo.allocator, random.Random(0), base=-1.0
            )


class TestBuild:
    def test_build_deterministic(self):
        a, b = _topo(seed=4), _topo(seed=4)
        assert a.graph.edges() == b.graph.edges()
        for asn in a.graph.ases:
            assert a.allocator.chunks_of(asn) == b.allocator.chunks_of(asn)

    def test_describe_mentions_spec(self):
        assert "synth:2:16" in _topo().describe()

    def test_as_of_delegates(self):
        topo = _topo()
        ip = BLOCKS[0].network + 3
        assert topo.as_of(ip) == topo.allocator.as_of(ip)
