"""Property-based equivalence tests for the struct-of-arrays
population core.

The hot-path refactor swapped per-entry objects for slab columns; the
whole point of the backend switch is that no caller can tell.  Two
levels of evidence:

* op-level: random operation sequences applied to both peer-list
  backends produce identical return values and identical views;
* network-level: a Zeus population built on the ``soa`` backend runs
  byte-for-byte like one built on the ``objects`` backend, across
  master seeds.

Plus the scheduler tie-break property the batched dispatch loop must
preserve: same-timestamp events fire in insertion order, regardless of
which store (due heap, timer wheel, far heap) they pass through.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.botnets.base import PeerEntry, PeerList
from repro.botnets.state import PeerSlab, SlabPeerList
from repro.botnets.zeus.network import ZeusNetwork
from repro.net.transport import Endpoint
from repro.sim.clock import HOUR, MINUTE
from repro.sim.scheduler import Scheduler
from repro.workloads.population import zeus_config

# A deliberately tiny id/address space so random sequences hit the
# interesting collisions: same bot re-added, same subnet contested,
# capacity evictions, failures on missing ids.
ids = st.binary(min_size=20, max_size=20).map(lambda b: b[:2] * 10)
endpoints = st.builds(
    Endpoint,
    ip=st.integers(min_value=1, max_value=0xFFFF).map(lambda ip: ip << 8),
    port=st.integers(min_value=1024, max_value=1030),
)
times = st.floats(min_value=0.0, max_value=100.0, allow_nan=False, width=32)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("add"), ids, endpoints, times),
        st.tuples(st.just("remove"), ids),
        st.tuples(st.just("touch"), ids, times),
        st.tuples(st.just("record_failure"), ids, st.integers(min_value=1, max_value=4)),
        st.tuples(st.just("closest"), ids, ids, st.integers(min_value=1, max_value=8)),
    ),
    max_size=60,
)


def _apply(peer_list, op):
    """Run one op against either backend; returns a comparable result."""
    kind = op[0]
    if kind == "add":
        _, bot_id, endpoint, last_seen = op
        return peer_list.add(
            PeerEntry(bot_id=bot_id, endpoint=endpoint, last_seen=last_seen)
        )
    if kind == "remove":
        return peer_list.remove(op[1])
    if kind == "touch":
        peer_list.touch(op[1], op[2])
        return None
    if kind == "record_failure":
        return peer_list.record_failure(op[1], op[2])
    if kind == "closest":
        return peer_list.closest(op[1], op[2], op[3])
    raise AssertionError(kind)


def _snapshot(peer_list):
    """Everything observable about a peer list, in one comparable value."""
    return (
        len(peer_list),
        [(e.bot_id, e.endpoint, e.last_seen, e.failures) for e in peer_list.entries()],
        peer_list.maintenance_view(),
        peer_list.ids(),
        peer_list.ips(),
    )


class TestPeerListBackendEquivalence:
    @pytest.mark.parametrize("prefix", [None, 20, 32])
    @given(ops=operations)
    @settings(max_examples=60, deadline=None)
    def test_same_ops_same_results(self, prefix, ops):
        """Both backends agree on every op result and every view."""
        objects = PeerList(capacity=6, ip_filter_prefix=prefix)
        slab = SlabPeerList(capacity=6, ip_filter_prefix=prefix, slab=PeerSlab())
        for op in ops:
            assert _apply(objects, op) == _apply(slab, op)
            assert _snapshot(objects) == _snapshot(slab)

    @given(ops=operations)
    @settings(max_examples=40, deadline=None)
    def test_shared_slab_lists_stay_independent(self, ops):
        """Many lists share one slab; ops on one never leak into another."""
        slab = PeerSlab()
        active = SlabPeerList(capacity=6, ip_filter_prefix=20, slab=slab)
        bystander = SlabPeerList(capacity=6, ip_filter_prefix=20, slab=slab)
        _apply(
            bystander,
            ("add", b"\xAA" * 20, Endpoint(0x0A000001, 4000), 1.0),
        )
        before = _snapshot(bystander)
        for op in ops:
            _apply(active, op)
        assert _snapshot(bystander) == before


def _run_fingerprint(master_seed: int, backend: str):
    """Build + run a tiny Zeus population; return observable totals."""
    config = zeus_config(
        "tiny", master_seed=master_seed, state_backend=backend
    )
    net = ZeusNetwork(config)
    net.build()
    net.start_all()
    net.run_for(1.0 * HOUR)
    bots = [
        (
            bot.node_id,
            bot.counters.messages_in,
            bot.counters.messages_out,
            bot.counters.cycles,
            sorted(bot.peer_list.ids()),
        )
        for bot in net.bots.values()
    ]
    return (net.scheduler.stats().dispatched, net.transport.stats.delivered, bots)


class TestNetworkBackendEquivalence:
    @given(master_seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=3, deadline=None)
    def test_soa_and_objects_runs_identical(self, master_seed):
        """A whole population run is indistinguishable across backends."""
        assert _run_fingerprint(master_seed, "soa") == _run_fingerprint(
            master_seed, "objects"
        )


class TestSchedulerBatchTieBreak:
    @given(
        order=st.permutations(list(range(12))),
        stamp=st.floats(min_value=0.0, max_value=10 * MINUTE, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_same_timestamp_fires_in_insertion_order(self, order, stamp):
        """Batched dispatch keeps the (time, sequence) contract: events
        scheduled for one instant run in scheduling order, however the
        stores shuffle them internally."""
        scheduler = Scheduler()
        fired = []
        for tag in order:
            scheduler.call_at(stamp, fired.append, tag)
        # Interleave other horizons so the wheel and far heap both hold
        # entries while the batch drains.
        scheduler.call_at(stamp + 1.0, fired.append, "later")
        scheduler.call_later(stamp + 2 * HOUR, fired.append, "far")
        scheduler.run_until(stamp)
        assert fired == list(order)

    @given(
        stamps=st.lists(
            st.sampled_from([0.0, 1.0, 1.0, 2.5, 2.5, 7200.0]), min_size=1, max_size=24
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_dispatch_is_stable_sort_by_time(self, stamps):
        """Across mixed horizons, dispatch order == stable sort of the
        schedule calls by timestamp."""
        scheduler = Scheduler()
        fired = []
        for index, stamp in enumerate(stamps):
            scheduler.call_at(stamp, fired.append, (stamp, index))
        scheduler.run_until(max(stamps))
        expected = sorted(
            [(stamp, index) for index, stamp in enumerate(stamps)],
            key=lambda item: item[0],
        )
        assert fired == expected
