"""Behavioural tests for Sality bots on a tiny simulated network."""

import random

import pytest

from repro.botnets.sality import protocol
from repro.botnets.sality.bot import SalityBot, SalityConfig
from repro.botnets.sality.protocol import Command
from repro.net.address import parse_ip
from repro.net.transport import Endpoint, Transport, TransportConfig
from repro.sim.clock import HOUR
from repro.sim.scheduler import Scheduler


def make_world():
    sched = Scheduler()
    transport = Transport(sched, random.Random(0), config=TransportConfig(loss_rate=0.0))
    return sched, transport


def make_bot(sched, transport, index, config=None, routable=True, cls=None):
    rng = random.Random(200 + index)
    if cls is None:
        cls = SalityBot
    return cls(
        node_id=f"bot-{index}",
        bot_id=rng.getrandbits(32).to_bytes(4, "big"),
        endpoint=Endpoint(parse_ip(f"25.{index}.0.1"), 3000 + index),
        transport=transport,
        scheduler=sched,
        rng=rng,
        routable=routable,
        config=config if config is not None else SalityConfig(),
    )


class CaptureBot(SalityBot):
    """SalityBot that records raw inbound messages.

    SalityBot itself uses ``__slots__``, so tests spy via this subclass
    instead of patching ``handle_message`` on instances.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.captured = []

    def handle_message(self, message):
        self.captured.append(message)
        super().handle_message(message)


def send_request(transport, sched, src_bot, dst_bot, command, payload=b"", capture=None):
    message = protocol.make_message(command, src_bot.int_id, src_bot.rng, payload=payload)
    seen = len(src_bot.captured) if capture is not None else 0
    transport.send(src_bot.endpoint, dst_bot.endpoint, protocol.encode_packet(message))
    sched.run_until(sched.now + 5.0)
    if capture is not None:
        capture.extend(src_bot.captured[seen:])


class TestConstruction:
    def test_bot_id_must_be_four_bytes(self):
        sched, transport = make_world()
        with pytest.raises(ValueError):
            SalityBot(
                node_id="x",
                bot_id=b"\x01" * 20,
                endpoint=Endpoint(parse_ip("25.0.0.1"), 3000),
                transport=transport,
                scheduler=sched,
                rng=random.Random(0),
            )


class TestPeerExchange:
    def test_hello_adds_sender_with_zero_goodcount(self):
        sched, transport = make_world()
        a = make_bot(sched, transport, 0)
        b = make_bot(sched, transport, 1)
        a.start()
        b.start()
        send_request(
            transport, sched, a, b, Command.HELLO, protocol.encode_hello(a.endpoint.port)
        )
        entry = b.peer_list.get(a.bot_id)
        assert entry is not None
        assert entry.goodcount == 0
        assert entry.endpoint == a.endpoint

    def test_peer_request_returns_single_reputed_peer(self):
        sched, transport = make_world()
        hub = make_bot(sched, transport, 0)
        reputed = make_bot(sched, transport, 1)
        requester = make_bot(sched, transport, 2, cls=CaptureBot)
        hub.seed_peers([(reputed.bot_id, reputed.endpoint)])  # seeded => reputed
        for bot in (hub, reputed, requester):
            bot.start()
        got = []
        send_request(transport, sched, requester, hub, Command.PEER_REQUEST, capture=got)
        assert got
        reply = protocol.decode_packet(got[-1].payload)
        assert reply.command == Command.PEER_RESPONSE
        entry = protocol.decode_peer_entry(reply.payload)
        assert entry == (reputed.int_id, reputed.endpoint)

    def test_unreputed_peers_not_propagated(self):
        """The goodcount scheme withholds unproven nodes (Section 3.1)."""
        sched, transport = make_world()
        hub = make_bot(sched, transport, 0)
        unproven = make_bot(sched, transport, 1)
        requester = make_bot(sched, transport, 2, cls=CaptureBot)
        for bot in (hub, unproven, requester):
            bot.start()
        # unproven announces itself (goodcount 0) ...
        send_request(
            transport, sched, unproven, hub, Command.HELLO,
            protocol.encode_hello(unproven.endpoint.port),
        )
        assert hub.peer_list.get(unproven.bot_id).goodcount == 0
        # ... and is not returned to requesters.
        got = []
        send_request(transport, sched, requester, hub, Command.PEER_REQUEST, capture=got)
        reply = protocol.decode_packet(got[-1].payload)
        assert protocol.decode_peer_entry(reply.payload) is None

    def test_goodcount_rises_for_responsive_peers(self):
        sched, transport = make_world()
        a = make_bot(sched, transport, 0)
        b = make_bot(sched, transport, 1)
        a.seed_peers([(b.bot_id, b.endpoint)])
        start_goodcount = a.peer_list.get(b.bot_id).goodcount
        a.start()
        b.start()
        sched.run_until(12 * HOUR)
        assert a.peer_list.get(b.bot_id).goodcount > start_goodcount

    def test_unresponsive_peer_loses_goodcount_and_is_evicted(self):
        sched, transport = make_world()
        config = SalityConfig(contacts_per_cycle=4, goodcount_evict_below=-3)
        a = make_bot(sched, transport, 0, config=config)
        b = make_bot(sched, transport, 1)
        a.seed_peers([(b.bot_id, b.endpoint)])
        a.start()  # b never starts
        sched.run_until(24 * HOUR)
        assert b.bot_id not in a.peer_list

    def test_plr_history_recorded(self):
        sched, transport = make_world()
        hub = make_bot(sched, transport, 0)
        requester = make_bot(sched, transport, 1)
        hub.start()
        requester.start()
        send_request(transport, sched, requester, hub, Command.PEER_REQUEST)
        history = hub.peer_list_requesters(since=0.0)
        assert len(history) == 1
        assert history[0][1] == requester.endpoint.ip


class TestUrlPacks:
    def test_urlpack_served_and_adopted(self):
        sched, transport = make_world()
        a = make_bot(sched, transport, 0)
        b = make_bot(sched, transport, 1)
        b.urlpack_sequence = 9
        b.urlpack_blob = b"fresh-pack"
        a.seed_peers([(b.bot_id, b.endpoint)])
        a.start()
        b.start()
        sched.run_until(24 * HOUR)
        assert a.urlpack_sequence == 9
        assert a.urlpack_blob == b"fresh-pack"

    def test_older_pack_not_adopted(self):
        sched, transport = make_world()
        a = make_bot(sched, transport, 0)
        b = make_bot(sched, transport, 1)
        a.urlpack_sequence = 20
        a.urlpack_blob = b"newer"
        b.urlpack_sequence = 3
        a.seed_peers([(b.bot_id, b.endpoint)])
        a.start()
        b.start()
        sched.run_until(24 * HOUR)
        assert a.urlpack_sequence == 20
        assert a.urlpack_blob == b"newer"


class TestSourcePorts:
    def test_routable_bot_randomizes_source_ports(self):
        """Ordinary bots use a fresh source port per exchange; a fixed
        port is the Table 2 "port range" crawler defect."""
        sched, transport = make_world()
        a = make_bot(sched, transport, 0)
        b = make_bot(sched, transport, 1)
        a.seed_peers([(b.bot_id, b.endpoint)])
        seen_ports = set()
        transport.add_tap(
            lambda m, ok: seen_ports.add(m.src.port) if m.src.ip == a.endpoint.ip else None
        )
        a.start()
        b.start()
        sched.run_until(24 * HOUR)
        assert len(seen_ports) > 3

    def test_natted_bot_keeps_mapped_endpoint(self):
        sched, transport = make_world()
        a = make_bot(sched, transport, 0, routable=False)
        b = make_bot(sched, transport, 1)
        a.seed_peers([(b.bot_id, b.endpoint)])
        seen_ports = set()
        transport.add_tap(
            lambda m, ok: seen_ports.add(m.src.port) if m.src.ip == a.endpoint.ip else None
        )
        a.start()
        b.start()
        sched.run_until(12 * HOUR)
        assert seen_ports == {a.endpoint.port}

    def test_stop_releases_ephemeral_ports(self):
        sched, transport = make_world()
        a = make_bot(sched, transport, 0)
        b = make_bot(sched, transport, 1)
        a.seed_peers([(b.bot_id, b.endpoint)])
        a.start()  # b offline: pendings accumulate
        sched.run_until(2 * HOUR)
        a.stop()
        # Only possibly b's endpoint remains; all of a's are gone.
        assert not any(
            transport.is_bound(Endpoint(a.endpoint.ip, port)) for port in range(10240, 10340)
        )
        assert not transport.is_bound(a.endpoint)


class TestRobustness:
    def test_garbage_packet_counted_and_dropped(self):
        sched, transport = make_world()
        a = make_bot(sched, transport, 0)
        b = make_bot(sched, transport, 1)
        a.start()
        b.start()
        transport.send(a.endpoint, b.endpoint, b"\x00" * 40)
        sched.run_until(5.0)
        assert b.undecodable == 1

    def test_unsolicited_response_ignored(self):
        sched, transport = make_world()
        a = make_bot(sched, transport, 0)
        b = make_bot(sched, transport, 1)
        a.start()
        b.start()
        payload = protocol.encode_peer_entry(123, Endpoint(parse_ip("27.0.0.1"), 7000))
        send_request(transport, sched, a, b, Command.PEER_RESPONSE, payload)
        assert len(b.peer_list) == 0
