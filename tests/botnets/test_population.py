"""Tests for population-builder address layout (hotspots, dense
neighborhoods, NAT grouping)."""

import pytest

from repro.botnets.population import PopulationConfig
from repro.botnets.zeus.network import ZeusNetwork, ZeusNetworkConfig
from repro.net.address import Subnet, subnet_key


def build(**overrides):
    defaults = dict(population=120, routable_fraction=0.5, bootstrap_peers=8, master_seed=4)
    defaults.update(overrides)
    net = ZeusNetwork(ZeusNetworkConfig(**defaults))
    net.build()
    return net


class TestDenseNeighborhoods:
    def test_each_neighborhood_fully_populated(self):
        net = build(dense_neighborhoods=3, bots_per_dense_neighborhood=8)
        assert len(net.dense_neighborhood_keys) == 3
        for key in net.dense_neighborhood_keys:
            members = [
                bot for bot in net.routable_bots if subnet_key(bot.endpoint.ip, 19) == key
            ]
            assert len(members) == 8
            halves = {subnet_key(bot.endpoint.ip, 20) for bot in members}
            assert len(halves) == 2  # split across both /20 halves

    def test_odd_bot_count_split(self):
        net = build(dense_neighborhoods=1, bots_per_dense_neighborhood=7)
        key = net.dense_neighborhood_keys[0]
        members = [
            bot for bot in net.routable_bots if subnet_key(bot.endpoint.ip, 19) == key
        ]
        assert len(members) == 7

    def test_no_neighborhoods_by_default(self):
        net = build()
        assert net.dense_neighborhood_keys == []

    def test_addresses_unique_where_required(self):
        net = build(dense_neighborhoods=4)
        routable_ips = [bot.endpoint.ip for bot in net.routable_bots]
        assert len(routable_ips) == len(set(routable_ips))
        endpoints = [bot.endpoint for bot in net.bots.values()]
        assert len(endpoints) == len(set(endpoints))  # NAT shares IPs, not ports

    def test_validation(self):
        config = PopulationConfig(dense_neighborhoods=2)
        assert config.bots_per_dense_neighborhood == 8


class TestAddressLayout:
    def test_routable_ips_inside_configured_blocks(self):
        net = build()
        blocks = [Subnet.parse(b) for b in net.config.routable_blocks]
        for bot in net.routable_bots:
            assert any(bot.endpoint.ip in block for block in blocks)

    def test_nat_ips_inside_nat_blocks(self):
        net = build()
        blocks = [Subnet.parse(b) for b in net.config.nat_blocks]
        for bot in net.non_routable_bots:
            assert any(bot.endpoint.ip in block for block in blocks)

    def test_hotspots_create_shared_slash24s(self):
        net = build(population=400, routable_fraction=0.5, subnet_hotspot_fraction=0.3)
        counts = {}
        for bot in net.routable_bots:
            key = subnet_key(bot.endpoint.ip, 24)
            counts[key] = counts.get(key, 0) + 1
        assert max(counts.values()) >= 2  # at least one multi-infection /24

    def test_zero_hotspot_fraction_spreads_bots(self):
        net = build(population=200, routable_fraction=0.5, subnet_hotspot_fraction=0.0)
        counts = {}
        for bot in net.routable_bots:
            key = subnet_key(bot.endpoint.ip, 24)
            counts[key] = counts.get(key, 0) + 1
        # Random draws over three /12 blocks: collisions are possible
        # but shared /24s must be rare without hotspotting.
        shared = sum(1 for c in counts.values() if c > 1)
        assert shared <= len(net.routable_bots) * 0.1

    def test_gateway_occupancy_bounded(self):
        net = build(population=300, routable_fraction=0.2, max_bots_per_gateway=3)
        assert all(1 <= g.occupancy <= 3 for g in net.gateways)
