"""Unit tests for the Zeus wire protocol codec."""

import random

import pytest

from repro.botnets.zeus import protocol
from repro.botnets.zeus.protocol import (
    MessageType,
    ZeusDecodeError,
    ZeusMessage,
    decode_message,
    decrypt_message,
    encode_message,
    encrypt_message,
    random_id,
    select_closest,
    xor_distance,
)
from repro.net.address import parse_ip
from repro.net.transport import Endpoint

RNG = random.Random(0)
SRC = bytes(range(20))


def fresh_message(msg_type=MessageType.VERSION_REQUEST, payload=b""):
    return protocol.make_message(msg_type, SRC, random.Random(1), payload=payload)


class TestCodec:
    def test_roundtrip_plain(self):
        message = fresh_message()
        decoded = decode_message(encode_message(message))
        assert decoded == message

    def test_roundtrip_with_payload_and_padding(self):
        payload = protocol.encode_peer_entries(
            [(random_id(RNG), Endpoint(parse_ip("25.0.0.1"), 2000))]
        )
        message = protocol.make_message(
            MessageType.PEER_LIST_REPLY, SRC, random.Random(2), payload=payload
        )
        decoded = decode_message(encode_message(message))
        assert decoded.payload == payload
        assert decoded.padding == message.padding

    def test_short_message_rejected(self):
        with pytest.raises(ZeusDecodeError):
            decode_message(b"\x00" * 10)

    def test_unknown_type_rejected(self):
        data = bytearray(encode_message(fresh_message()))
        data[3] = 0xEE
        with pytest.raises(ZeusDecodeError):
            decode_message(bytes(data))

    def test_irrational_lop_rejected(self):
        data = bytearray(encode_message(fresh_message()))
        data[2] = 0xFF
        with pytest.raises(ZeusDecodeError):
            decode_message(bytes(data))

    def test_lop_longer_than_body_rejected(self):
        data = bytearray(encode_message(fresh_message()))
        data[2] = protocol.MAX_LOP  # body has less padding than this
        if len(data) - protocol.HEADER_LEN < protocol.MAX_LOP:
            with pytest.raises(ZeusDecodeError):
                decode_message(bytes(data))

    def test_payload_validation_peer_list_request(self):
        message = ZeusMessage(
            msg_type=MessageType.PEER_LIST_REQUEST,
            session_id=random_id(RNG),
            source_id=SRC,
            payload=b"too-short",
        )
        with pytest.raises(ZeusDecodeError):
            decode_message(encode_message(message))

    def test_payload_validation_reply_count_mismatch(self):
        message = ZeusMessage(
            msg_type=MessageType.PEER_LIST_REPLY,
            session_id=random_id(RNG),
            source_id=SRC,
            payload=b"\x05",  # claims 5 entries, provides none
        )
        with pytest.raises(ZeusDecodeError):
            decode_message(encode_message(message))

    def test_header_fields_randomized_by_make_message(self):
        rng = random.Random(3)
        messages = [protocol.make_message(MessageType.VERSION_REQUEST, SRC, rng) for _ in range(50)]
        assert len({m.random_byte for m in messages}) > 10
        assert len({m.ttl for m in messages}) > 10
        assert len({len(m.padding) for m in messages}) > 5
        assert len({m.session_id for m in messages}) == 50


class TestPeerEntries:
    def test_roundtrip(self):
        entries = [
            (random_id(RNG), Endpoint(parse_ip("25.0.0.1"), 2000)),
            (random_id(RNG), Endpoint(parse_ip("26.1.2.3"), 9999)),
        ]
        payload = protocol.encode_peer_entries(entries)
        assert protocol.decode_peer_entries(payload) == entries

    def test_empty_list(self):
        assert protocol.decode_peer_entries(protocol.encode_peer_entries([])) == []

    def test_zero_port_rejected(self):
        payload = bytearray(
            protocol.encode_peer_entries([(random_id(RNG), Endpoint(parse_ip("25.0.0.1"), 2000))])
        )
        payload[-2:] = b"\x00\x00"
        with pytest.raises(ZeusDecodeError):
            protocol.decode_peer_entries(bytes(payload))

    def test_version_reply_roundtrip(self):
        payload = protocol.encode_version_reply(0x00030204, 4321)
        assert protocol.decode_version_reply(payload) == (0x00030204, 4321)

    def test_data_reply_roundtrip(self):
        payload = protocol.encode_data_reply(1, b"config-blob")
        assert protocol.decode_data_reply(payload) == (1, b"config-blob")

    def test_data_reply_length_mismatch(self):
        payload = bytearray(protocol.encode_data_reply(1, b"blob"))
        payload[4] += 1
        with pytest.raises(ZeusDecodeError):
            protocol.decode_data_reply(bytes(payload))


class TestXorMetric:
    def test_distance_symmetric_and_zero_on_self(self):
        a, b = random_id(RNG), random_id(RNG)
        assert xor_distance(a, b) == xor_distance(b, a)
        assert xor_distance(a, a) == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            xor_distance(b"ab", b"abc")

    def test_select_closest_orders_by_distance(self):
        key = bytes(20)
        near = bytes(19) + b"\x01"
        far = b"\xff" * 20
        endpoint = Endpoint(parse_ip("25.0.0.1"), 2000)
        selected = select_closest(key, [(far, endpoint), (near, endpoint)], limit=1)
        assert selected == [(near, endpoint)]

    def test_select_closest_limit(self):
        endpoint = Endpoint(parse_ip("25.0.0.1"), 2000)
        candidates = [(random_id(RNG), endpoint) for _ in range(30)]
        assert len(select_closest(bytes(20), candidates, limit=10)) == 10


class TestEncryptedRoundtrip:
    def test_roundtrip(self):
        recipient = random_id(random.Random(9))
        message = fresh_message()
        wire = encrypt_message(message, recipient)
        assert decrypt_message(wire, recipient) == message

    def test_wrong_key_raises_decode_error(self):
        """A wrongly keyed message is undecryptable at the receiver --
        the invalid-encryption defect signal (Section 4.1.3)."""
        recipient = random_id(random.Random(9))
        wrong = random_id(random.Random(10))
        failures = 0
        for i in range(20):
            message = protocol.make_message(
                MessageType.VERSION_REQUEST, SRC, random.Random(i)
            )
            try:
                decrypt_message(encrypt_message(message, wrong), recipient)
            except ZeusDecodeError:
                failures += 1
        assert failures >= 18  # structural checks catch nearly all
