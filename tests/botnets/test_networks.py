"""Integration tests for the Zeus and Sality population builders."""

import pytest

from repro.botnets.population import PopulationConfig
from repro.botnets.sality.network import SalityNetwork, SalityNetworkConfig
from repro.botnets.zeus.network import ZeusNetwork, ZeusNetworkConfig
from repro.net.churn import ChurnConfig
from repro.sim.clock import HOUR


def small_zeus(**overrides):
    defaults = dict(population=60, routable_fraction=0.4, bootstrap_peers=8, master_seed=7)
    defaults.update(overrides)
    net = ZeusNetwork(ZeusNetworkConfig(**defaults))
    net.build()
    return net


def small_sality(**overrides):
    defaults = dict(population=60, routable_fraction=0.4, bootstrap_peers=8, master_seed=7)
    defaults.update(overrides)
    net = SalityNetwork(SalityNetworkConfig(**defaults))
    net.build()
    return net


class TestBuild:
    def test_population_counts(self):
        net = small_zeus()
        assert len(net.bots) == 60
        assert len(net.routable_bots) == 24
        assert len(net.non_routable_bots) == 36

    def test_build_twice_rejected(self):
        net = small_zeus()
        with pytest.raises(RuntimeError):
            net.build()

    def test_bot_ids_unique(self):
        net = small_zeus()
        assert len(net.bots_by_bot_id) == 60

    def test_zeus_ports_in_family_range(self):
        net = small_zeus()
        for bot in net.routable_bots:
            assert 1024 <= bot.endpoint.port <= 10000

    def test_natted_bots_share_gateway_ips(self):
        net = small_zeus(population=200, routable_fraction=0.2, max_bots_per_gateway=4)
        occupancies = [g.occupancy for g in net.gateways]
        assert sum(occupancies) == len(net.non_routable_bots)
        assert max(occupancies) > 1  # at least one shared IP exists

    def test_bootstrap_seeds_peer_lists(self):
        net = small_zeus()
        for bot in net.bots.values():
            assert len(bot.peer_list) > 0

    def test_proxies_elected(self):
        net = small_zeus()
        assert len(net.proxies) == 4
        for bot in net.bots.values():
            assert bot.proxy_list == net.proxies

    def test_bootstrap_sample_routable_only(self):
        net = small_zeus()
        sample = net.bootstrap_sample(10, seed=1)
        assert len(sample) == 10
        routable_ids = {bot.bot_id for bot in net.routable_bots}
        assert all(bot_id in routable_ids for bot_id, _ in sample)

    def test_deterministic_build(self):
        a, b = small_zeus(), small_zeus()
        assert [bot.endpoint for bot in a.bots.values()] == [
            bot.endpoint for bot in b.bots.values()
        ]
        assert list(a.bots_by_bot_id) == list(b.bots_by_bot_id)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PopulationConfig(population=0)
        with pytest.raises(ValueError):
            PopulationConfig(routable_fraction=0.0)
        with pytest.raises(ValueError):
            PopulationConfig(max_bots_per_gateway=0)


class TestRun:
    def test_zeus_network_runs_and_stays_connected(self):
        net = small_zeus()
        net.start_all()
        net.run_for(3 * HOUR)
        graph = net.connectivity_graph()
        graph.check_degree_sum()
        assert graph.edge_count > 0
        # every started bot retained peers
        assert all(len(bot.peer_list) > 0 for bot in net.bots.values())

    def test_sality_network_runs(self):
        net = small_sality()
        net.start_all()
        net.run_for(3 * HOUR)
        assert net.transport.stats.delivered > 0
        graph = net.connectivity_graph()
        assert graph.edge_count > 0

    def test_sality_goodcounts_accumulate(self):
        net = small_sality()
        net.start_all()
        net.run_for(8 * HOUR)
        goodcounts = [
            entry.goodcount
            for bot in net.bots.values()
            for entry in bot.peer_list
        ]
        assert max(goodcounts) > 2

    def test_non_routable_bots_participate_via_punchholes(self):
        net = small_zeus()
        net.start_all()
        net.run_for(4 * HOUR)
        natted = net.non_routable_bots
        # NATed bots successfully exchange messages despite being
        # unreachable to unsolicited traffic.
        assert any(bot.counters.messages_in > 0 for bot in natted)

    def test_churn_takes_bots_down_and_up(self):
        net = small_zeus(churn=ChurnConfig(mean_session=2 * HOUR, mean_offline=HOUR))
        net.start_all()
        net.run_for(12 * HOUR)
        assert net.churn is not None
        assert net.churn.transitions > 0
        online = net.churn.online_count()
        assert 0 < online <= 60

    def test_graph_includes_external_nodes(self):
        """Peers that are not bots (e.g. sensors) appear as ext: nodes."""
        from repro.botnets.base import PeerEntry
        from repro.net.transport import Endpoint
        from repro.net.address import parse_ip

        net = small_zeus()
        bot = next(iter(net.bots.values()))
        sensor_endpoint = Endpoint(parse_ip("28.0.0.1"), 9000)
        bot.peer_list.add(
            PeerEntry(bot_id=b"\x42" * 20, endpoint=sensor_endpoint, last_seen=1.0)
        )
        graph = net.connectivity_graph()
        assert graph.has_edge(bot.node_id, f"ext:{sensor_endpoint}")
