"""Tests for active anti-recon attacks (Section 3)."""

import random

import pytest

from repro.botnets.antirecon import (
    AutoBlacklister,
    DisinformationPolicy,
    RetaliationTracker,
    ShadowNode,
    StaticBlacklist,
)
from repro.net.address import Subnet, is_reserved, parse_ip
from repro.net.transport import Endpoint

IP = parse_ip("198.51.100.9")


class TestStaticBlacklist:
    def test_add_and_block(self):
        bl = StaticBlacklist()
        bl.add(IP)
        assert bl.is_blocked(IP)
        assert not bl.is_blocked(IP + 1)
        assert bl.hits == 1

    def test_update_merges(self):
        bl = StaticBlacklist({IP})
        bl.update({IP + 1, IP + 2})
        assert len(bl) == 3

    def test_entries_visible(self):
        """Hardcoded blacklists ship in binaries, hence are public --
        blocked IPs burn for analysis on *other* botnets too."""
        bl = StaticBlacklist({IP})
        assert IP in bl.entries


class TestAutoBlacklister:
    def test_burst_trips_threshold(self):
        abl = AutoBlacklister(window=60.0, max_requests=3)
        for t in range(3):
            assert not abl.record(IP, float(t))
        assert abl.record(IP, 3.0)
        assert abl.is_blocked(IP)

    def test_spread_requests_stay_clean(self):
        abl = AutoBlacklister(window=60.0, max_requests=3)
        for i in range(50):
            assert not abl.record(IP, i * 30.0)
        assert not abl.is_blocked(IP)

    def test_block_is_permanent(self):
        abl = AutoBlacklister(window=60.0, max_requests=1)
        abl.record(IP, 0.0)
        abl.record(IP, 0.1)
        assert abl.record(IP, 99999.0)

    def test_nat_sharing_survives_threshold(self):
        """Several NATed bots on one IP at normal rates stay under the
        (deliberately lenient) threshold."""
        abl = AutoBlacklister(window=60.0, max_requests=6)
        # 4 bots, one request each per 30-min cycle => 4 requests/window max
        for cycle in range(48):
            for bot in range(4):
                assert not abl.record(IP, cycle * 1800.0 + bot * 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            AutoBlacklister(window=0)
        with pytest.raises(ValueError):
            AutoBlacklister(max_requests=0)


class TestDisinformation:
    def entries(self, count=10):
        return [
            (bytes([i]) * 20, Endpoint(parse_ip("25.0.0.1") + i, 2000))
            for i in range(count)
        ]

    def test_pollution_replaces_fraction(self):
        policy = DisinformationPolicy(random.Random(0), junk_ratio=0.5)
        polluted = policy.pollute(self.entries())
        junk = [e for e in polluted if e[1].ip in policy.junk_space]
        assert len(junk) == 5
        assert policy.forged_entries == 5

    def test_zero_ratio_is_noop(self):
        policy = DisinformationPolicy(random.Random(0), junk_ratio=0.0)
        entries = self.entries()
        assert policy.pollute(entries) == entries

    def test_empty_list_passthrough(self):
        policy = DisinformationPolicy(random.Random(0), junk_ratio=0.5)
        assert policy.pollute([]) == []

    def test_shadow_nodes_used_when_available(self):
        shadow = ShadowNode(bot_id=b"\xee" * 20, endpoint=Endpoint(parse_ip("27.9.9.9"), 1234))
        policy = DisinformationPolicy(
            random.Random(1), junk_ratio=1.0, shadow_nodes=[shadow]
        )
        polluted = policy.pollute(self.entries(20))
        assert any(entry == (shadow.bot_id, shadow.endpoint) for entry in polluted)

    def test_custom_junk_space(self):
        space = Subnet.parse("100.100.0.0/24")
        policy = DisinformationPolicy(random.Random(0), junk_ratio=1.0, junk_space=space)
        polluted = policy.pollute(self.entries())
        assert all(entry[1].ip in space for entry in polluted)

    def test_bad_ratio_rejected(self):
        with pytest.raises(ValueError):
            DisinformationPolicy(random.Random(0), junk_ratio=1.5)


class TestRetaliation:
    def test_launch_and_window(self):
        tracker = RetaliationTracker(attack_duration=100.0)
        tracker.launch(time=10.0, target_ip=IP)
        assert not tracker.under_attack(IP, 5.0)
        assert tracker.under_attack(IP, 10.0)
        assert tracker.under_attack(IP, 109.9)
        assert not tracker.under_attack(IP, 110.1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            RetaliationTracker().launch(0.0, IP, kind="emp")

    def test_targets(self):
        tracker = RetaliationTracker()
        tracker.launch(0.0, IP)
        tracker.launch(5.0, IP + 1, kind="infiltration", magnitude=0)
        assert tracker.targets() == {IP, IP + 1}

    def test_describe(self):
        event = RetaliationTracker().launch(0.0, IP)
        assert "ddos" in event.describe()
        assert "198.51.100.9" in event.describe()
