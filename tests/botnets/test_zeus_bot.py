"""Behavioural tests for Zeus bots on a tiny simulated network."""

import random

import pytest

from repro.botnets.zeus import protocol
from repro.botnets.zeus.bot import ZeusBot, ZeusConfig
from repro.botnets.zeus.protocol import MessageType
from repro.net.address import parse_ip
from repro.net.transport import Endpoint, Transport, TransportConfig
from repro.sim.clock import HOUR, MINUTE
from repro.sim.scheduler import Scheduler


def make_world(loss_rate=0.0):
    sched = Scheduler()
    transport = Transport(
        sched, random.Random(0), config=TransportConfig(loss_rate=loss_rate)
    )
    return sched, transport


class CaptureBot(ZeusBot):
    """ZeusBot that records raw inbound messages.

    ZeusBot itself uses ``__slots__``, so tests spy via this subclass
    instead of patching ``handle_message`` on instances.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.captured = []

    def handle_message(self, message):
        self.captured.append(message)
        super().handle_message(message)


def make_bot(sched, transport, index, config=None, routable=True, cls=ZeusBot, **kwargs):
    rng = random.Random(100 + index)
    return cls(
        node_id=f"bot-{index}",
        bot_id=protocol.random_id(rng),
        # Distinct /20 per bot, or the Zeus subnet filter collapses them.
        endpoint=Endpoint(parse_ip(f"25.{index}.0.1"), 3000 + index),
        transport=transport,
        scheduler=sched,
        rng=rng,
        routable=routable,
        config=config if config is not None else ZeusConfig(),
        **kwargs,
    )


def link(a, b):
    """Make a know b."""
    a.seed_peers([(b.bot_id, b.endpoint)])


class TestPeerExchange:
    def test_version_probe_keeps_peers_fresh(self):
        sched, transport = make_world()
        a = make_bot(sched, transport, 0)
        b = make_bot(sched, transport, 1)
        link(a, b)
        a.start()
        b.start()
        sched.run_until(3 * HOUR)
        entry = a.peer_list.get(b.bot_id)
        assert entry is not None
        assert entry.failures == 0
        assert entry.last_seen > 0

    def test_unresponsive_peer_evicted(self):
        sched, transport = make_world()
        config = ZeusConfig(verify_per_cycle=5, evict_after_failures=5)
        a = make_bot(sched, transport, 0, config=config)
        b = make_bot(sched, transport, 1)
        link(a, b)
        a.start()  # b never starts: all probes time out
        sched.run_until(8 * HOUR)
        assert b.bot_id not in a.peer_list

    def test_peer_list_request_returns_closest_peers(self):
        sched, transport = make_world()
        bots = [
            make_bot(sched, transport, i, cls=CaptureBot if i == 1 else ZeusBot)
            for i in range(12)
        ]
        hub = bots[0]
        for other in bots[1:]:
            link(hub, other)
        for bot in bots:
            bot.start()

        # Craft a peer-list request from bot 1 to the hub.
        requester = bots[1]
        got = requester.captured
        message = protocol.make_message(
            MessageType.PEER_LIST_REQUEST,
            requester.bot_id,
            requester.rng,
            payload=requester.bot_id,
        )
        requester.transport.send(
            requester.endpoint, hub.endpoint, protocol.encrypt_message(message, hub.bot_id)
        )
        sched.run_until(10.0)
        assert len(got) == 1
        reply = protocol.decrypt_message(got[0].payload, requester.bot_id)
        assert reply.msg_type == MessageType.PEER_LIST_REPLY
        entries = protocol.decode_peer_entries(reply.payload)
        assert 1 <= len(entries) <= 10
        assert all(bot_id != requester.bot_id for bot_id, _ in entries)

    def test_requester_learned_by_push(self):
        """PLR handling adds the requester to the peer list (push)."""
        sched, transport = make_world()
        hub = make_bot(sched, transport, 0)
        newcomer = make_bot(sched, transport, 1)
        link(newcomer, hub)
        hub.start()
        newcomer.start()
        message = protocol.make_message(
            MessageType.PEER_LIST_REQUEST,
            newcomer.bot_id,
            newcomer.rng,
            payload=newcomer.bot_id,
        )
        transport.send(
            newcomer.endpoint, hub.endpoint, protocol.encrypt_message(message, hub.bot_id)
        )
        sched.run_until(5.0)
        assert newcomer.bot_id in hub.peer_list

    def test_peer_discovery_grows_lists(self):
        """Bots short on peers discover new ones through exchanges."""
        sched, transport = make_world()
        config = ZeusConfig(needed_peers=30, plr_per_cycle=3)
        bots = [make_bot(sched, transport, i, config=config) for i in range(20)]
        # Ring topology: each knows only 2 neighbours initially.
        for i, bot in enumerate(bots):
            link(bot, bots[(i + 1) % 20])
            link(bot, bots[(i + 2) % 20])
        for bot in bots:
            bot.start()
        before = sum(len(bot.peer_list) for bot in bots)
        sched.run_until(12 * HOUR)
        after = sum(len(bot.peer_list) for bot in bots)
        assert after > before

    def test_plr_history_recorded(self):
        sched, transport = make_world()
        hub = make_bot(sched, transport, 0)
        other = make_bot(sched, transport, 1)
        link(other, hub)
        hub.start()
        other.start()
        message = protocol.make_message(
            MessageType.PEER_LIST_REQUEST, other.bot_id, other.rng, payload=other.bot_id
        )
        transport.send(other.endpoint, hub.endpoint, protocol.encrypt_message(message, hub.bot_id))
        sched.run_until(5.0)
        history = hub.peer_list_requesters(since=0.0)
        assert len(history) == 1
        assert history[0][1] == other.endpoint.ip


class TestProtocolServices:
    def send_and_capture(self, sched, transport, src_bot, dst_bot, msg_type, payload):
        got = src_bot.captured
        message = protocol.make_message(msg_type, src_bot.bot_id, src_bot.rng, payload=payload)
        transport.send(
            src_bot.endpoint, dst_bot.endpoint, protocol.encrypt_message(message, dst_bot.bot_id)
        )
        sched.run_until(sched.now + 5.0)
        assert got, "no reply received"
        return protocol.decrypt_message(got[-1].payload, src_bot.bot_id)

    def test_proxy_request_served(self):
        sched, transport = make_world()
        a = make_bot(sched, transport, 0, cls=CaptureBot)
        b = make_bot(sched, transport, 1)
        proxy = (protocol.random_id(random.Random(5)), Endpoint(parse_ip("26.0.0.1"), 7000))
        b.proxy_list = [proxy]
        a.start()
        b.start()
        reply = self.send_and_capture(sched, transport, a, b, MessageType.PROXY_REQUEST, b"")
        assert reply.msg_type == MessageType.PROXY_REPLY
        assert protocol.decode_peer_entries(reply.payload) == [proxy]

    def test_data_request_served(self):
        sched, transport = make_world()
        a = make_bot(sched, transport, 0, cls=CaptureBot)
        b = make_bot(sched, transport, 1)
        a.start()
        b.start()
        reply = self.send_and_capture(sched, transport, a, b, MessageType.DATA_REQUEST, b"\x01")
        assert reply.msg_type == MessageType.DATA_REPLY
        resource, blob = protocol.decode_data_reply(reply.payload)
        assert resource == 1
        assert blob == b.config_blob

    def test_version_request_served(self):
        sched, transport = make_world()
        a = make_bot(sched, transport, 0, cls=CaptureBot)
        b = make_bot(sched, transport, 1)
        a.start()
        b.start()
        reply = self.send_and_capture(sched, transport, a, b, MessageType.VERSION_REQUEST, b"")
        version, port = protocol.decode_version_reply(reply.payload)
        assert version == b.config.version
        assert port == b.endpoint.port


class TestDefences:
    def test_wrongly_keyed_message_dropped(self):
        sched, transport = make_world()
        a = make_bot(sched, transport, 0)
        b = make_bot(sched, transport, 1)
        a.start()
        b.start()
        message = protocol.make_message(MessageType.VERSION_REQUEST, a.bot_id, a.rng)
        wrong_key = protocol.random_id(random.Random(77))
        transport.send(a.endpoint, b.endpoint, protocol.encrypt_message(message, wrong_key))
        sched.run_until(5.0)
        assert b.undecryptable == 1
        assert b.counters.requests_served == 0

    def test_static_blacklist_blocks(self):
        sched, transport = make_world()
        a = make_bot(sched, transport, 0)
        b = make_bot(sched, transport, 1)
        b.static_blacklist.add(a.endpoint.ip)
        a.start()
        b.start()
        message = protocol.make_message(MessageType.VERSION_REQUEST, a.bot_id, a.rng)
        transport.send(a.endpoint, b.endpoint, protocol.encrypt_message(message, b.bot_id))
        sched.run_until(5.0)
        assert b.blacklist_drops == 1
        assert b.counters.requests_served == 0

    def test_auto_blacklist_blocks_hard_hitter(self):
        """Rapid-fire PLRs trip the automatic blacklisting (Section 3.2)."""
        sched, transport = make_world()
        config = ZeusConfig(auto_blacklist_window=60.0, auto_blacklist_max_requests=3)
        hub = make_bot(sched, transport, 0, config=config)
        crawler = make_bot(sched, transport, 1)
        hub.start()
        crawler.start()

        def fire():
            message = protocol.make_message(
                MessageType.PEER_LIST_REQUEST, crawler.bot_id, crawler.rng, payload=hub.bot_id
            )
            transport.send(
                crawler.endpoint, hub.endpoint, protocol.encrypt_message(message, hub.bot_id)
            )

        for i in range(10):
            sched.call_at(float(i), fire)
        sched.run_until(60.0)
        assert hub.auto_blacklister.is_blocked(crawler.endpoint.ip)
        assert len(hub.peer_list_requesters(since=0.0)) <= 4

    def test_slow_requester_not_blacklisted(self):
        sched, transport = make_world()
        config = ZeusConfig(auto_blacklist_window=60.0, auto_blacklist_max_requests=3)
        hub = make_bot(sched, transport, 0, config=config)
        slow = make_bot(sched, transport, 1)
        hub.start()
        slow.start()

        def fire():
            message = protocol.make_message(
                MessageType.PEER_LIST_REQUEST, slow.bot_id, slow.rng, payload=hub.bot_id
            )
            transport.send(
                slow.endpoint, hub.endpoint, protocol.encrypt_message(message, hub.bot_id)
            )

        for i in range(10):
            sched.call_at(i * 30 * MINUTE, fire)
        sched.run_until(6 * HOUR)
        assert not hub.auto_blacklister.is_blocked(slow.endpoint.ip)
        # The scripted 10 requests all land (plus the bot's own normal
        # cycle-driven requests once it learns the hub).
        assert len(hub.peer_list_requesters(since=0.0)) >= 10
