"""Unit tests for the connectivity digraph."""

import pytest

from repro.botnets.graph import ConnectivityGraph


def triangle():
    g = ConnectivityGraph()
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    g.add_edge("c", "a")
    return g


class TestConstruction:
    def test_add_edge_creates_nodes(self):
        g = ConnectivityGraph()
        g.add_edge("a", "b")
        assert "a" in g and "b" in g
        assert g.has_edge("a", "b")
        assert not g.has_edge("b", "a")

    def test_add_edge_idempotent(self):
        g = ConnectivityGraph()
        g.add_edge("a", "b")
        g.add_edge("a", "b")
        assert g.edge_count == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            ConnectivityGraph().add_edge("a", "a")

    def test_remove_edge(self):
        g = triangle()
        g.remove_edge("a", "b")
        assert not g.has_edge("a", "b")
        assert g.edge_count == 2

    def test_remove_node_removes_incident_edges(self):
        g = triangle()
        g.remove_node("b")
        assert "b" not in g
        assert g.edge_count == 1  # only c -> a survives
        assert g.has_edge("c", "a")
        g.check_degree_sum()


class TestDegrees:
    def test_degrees(self):
        g = triangle()
        g.add_edge("a", "c")
        assert g.out_degree("a") == 2
        assert g.in_degree("c") == 2
        assert g.in_degree("a") == 1

    def test_degree_sum_formula(self):
        g = triangle()
        g.add_edge("a", "c")
        assert g.check_degree_sum() == g.edge_count == 4

    def test_top_in_degree(self):
        g = ConnectivityGraph()
        for src in ("a", "b", "c"):
            g.add_edge(src, "sensor")
        g.add_edge("a", "b")
        top = g.top_in_degree(1)
        assert top == [("sensor", 3)]

    def test_top_out_degree(self):
        g = ConnectivityGraph()
        for dst in ("a", "b", "c"):
            g.add_edge("crawler", dst)
        assert g.top_out_degree(1) == [("crawler", 3)]

    def test_top_degree_ties_deterministic(self):
        g = ConnectivityGraph()
        g.add_edge("x", "b")
        g.add_edge("x", "a")
        assert g.top_in_degree(2) == [("a", 1), ("b", 1)]


class TestTraversal:
    def test_reachable_from(self):
        g = triangle()
        g.add_node("island")
        assert g.reachable_from(["a"]) == {"a", "b", "c"}

    def test_reachable_ignores_unknown_starts(self):
        assert triangle().reachable_from(["zzz"]) == set()

    def test_snapshot_is_independent(self):
        g = triangle()
        snap = g.snapshot()
        g.add_edge("a", "c")
        assert not snap.has_edge("a", "c")
        assert snap.edge_count == 3

    def test_successors_and_predecessors_are_copies(self):
        g = triangle()
        succs = g.successors("a")
        succs.add("zzz")
        assert "zzz" not in g.successors("a")
