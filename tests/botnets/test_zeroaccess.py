"""Tests for the ZeroAccess flux model (Table 1 "Peer push" row)."""

import random

import pytest

from repro.botnets.base import PeerEntry
from repro.botnets.zeroaccess import (
    FIXED_PORT,
    MSG_GETL,
    MSG_PUSH,
    MSG_RETL,
    ZeroAccessBot,
    ZeroAccessConfig,
    ZeroAccessDecodeError,
    decode_packet,
    encode_packet,
)
from repro.net.address import parse_ip
from repro.net.transport import Endpoint, Transport, TransportConfig
from repro.sim.clock import HOUR
from repro.sim.scheduler import Scheduler


class TestCodec:
    def test_roundtrip(self):
        entries = [(0xAABBCCDD, parse_ip("25.0.0.1")), (1, parse_ip("26.0.0.2"))]
        for msg_type in (MSG_GETL, MSG_RETL, MSG_PUSH):
            wire = encode_packet(msg_type, 0x11223344, entries)
            assert decode_packet(wire) == (msg_type, 0x11223344, entries)

    def test_bad_magic_rejected(self):
        with pytest.raises(ZeroAccessDecodeError):
            decode_packet(b"XXXX\x01\x00\x00\x00\x00\x00")

    def test_unknown_type_rejected(self):
        with pytest.raises(ZeroAccessDecodeError):
            decode_packet(b"ZA30\x77\x00\x00\x00\x00\x00")

    def test_length_mismatch_rejected(self):
        wire = encode_packet(MSG_RETL, 7, [(1, 2)])
        with pytest.raises(ZeroAccessDecodeError):
            decode_packet(wire[:-1])


def build_network(count=20, seed=0):
    sched = Scheduler()
    transport = Transport(sched, random.Random(seed), config=TransportConfig(loss_rate=0.0))
    bots = []
    rng = random.Random(seed + 1)
    for index in range(count):
        bot = ZeroAccessBot(
            node_id=f"za-{index}",
            bot_id=rng.getrandbits(32).to_bytes(4, "big"),
            endpoint=Endpoint(parse_ip(f"25.{index}.0.1"), FIXED_PORT),
            transport=transport,
            scheduler=sched,
            rng=random.Random(seed + 10 + index),
        )
        bots.append(bot)
    boot_rng = random.Random(seed + 2)
    for bot in bots:
        candidates = [b for b in bots if b is not bot]
        seeds = boot_rng.sample(candidates, min(6, len(candidates)))
        bot.seed_peers([(b.bot_id, b.endpoint) for b in seeds])
        bot.start()
    return sched, transport, bots


class TestBot:
    def test_fixed_port_enforced(self):
        sched = Scheduler()
        transport = Transport(sched, random.Random(0))
        with pytest.raises(ValueError):
            ZeroAccessBot(
                node_id="x",
                bot_id=b"\x01\x02\x03\x04",
                endpoint=Endpoint(parse_ip("25.0.0.1"), 9999),
                transport=transport,
                scheduler=sched,
                rng=random.Random(0),
            )

    def test_flux_pushes_flow(self):
        sched, transport, bots = build_network()
        sched.run_until(6 * HOUR)
        assert sum(bot.pushes_received for bot in bots) > 50

    def test_getl_probe_answered(self):
        """The scannable probe: GETL from anywhere gets peers back --
        why ZeroAccess is enumerable Internet-wide (Table 5)."""
        sched, transport, bots = build_network()
        sched.run_until(1 * HOUR)
        prober = Endpoint(parse_ip("99.0.0.1"), 40000)
        replies = []
        transport.bind(prober, replies.append)
        transport.send(prober, bots[0].endpoint, encode_packet(MSG_GETL, 0x99999999, []))
        sched.run_until(sched.now + 5.0)
        assert replies
        msg_type, sender_id, entries = decode_packet(replies[0].payload)
        assert msg_type == MSG_RETL
        assert sender_id == bots[0].int_id
        assert 1 <= len(entries) <= 16

    def test_flux_washes_out_injected_sensor(self):
        """Section 3.1: a sensor injected once into peer lists is
        verified, fails its keepalives, and is evicted -- persistent
        presence requires continuous announcement."""
        sched, transport, bots = build_network(count=24)
        sensor_id = b"\xee\xee\xee\xee"
        sensor_endpoint = Endpoint(parse_ip("45.0.0.1"), FIXED_PORT)
        sched.run_until(1 * HOUR)
        for bot in bots:
            bot.peer_list.add(
                PeerEntry(bot_id=sensor_id, endpoint=sensor_endpoint, last_seen=sched.now)
            )
        holders_before = sum(1 for bot in bots if sensor_id in bot.peer_list)
        assert holders_before == len(bots)
        # The sensor never answers keepalives and never re-announces.
        sched.run_until(sched.now + 24 * HOUR)
        holders_after = sum(1 for bot in bots if sensor_id in bot.peer_list)
        assert holders_after <= holders_before * 0.25

    def test_responsive_node_survives_flux(self):
        """The counterpoint: a node that keeps answering keepalives
        stays in peer lists -- sensors must implement the protocol."""
        sched, transport, bots = build_network(count=24)
        sched.run_until(26 * HOUR)
        held = sum(len(bot.peer_list) for bot in bots) / len(bots)
        assert held >= 6  # real peers persist

    def test_garbage_counted(self):
        sched, transport, bots = build_network(count=3)
        noise = Endpoint(parse_ip("99.0.0.1"), 40000)
        transport.bind(noise, lambda m: None)
        transport.send(noise, bots[0].endpoint, b"\x00" * 30)
        sched.run_until(sched.now + 5.0)
        assert bots[0].undecodable == 1

    def test_hearsay_entries_backdated(self):
        """Pushed entries never outrank directly-verified peers."""
        sched, transport, bots = build_network(count=5)
        sched.run_until(2 * HOUR)
        bot = bots[0]
        phantom = (0xDEADBEEF, parse_ip("46.0.0.1"))
        wire = encode_packet(MSG_PUSH, bots[1].int_id, [phantom])
        transport.send(bots[1].endpoint, bot.endpoint, wire)
        sched.run_until(sched.now + 5.0)
        entry = bot.peer_list.get((0xDEADBEEF).to_bytes(4, "big"))
        assert entry is not None
        assert entry.last_seen < sched.now - 60.0
