"""Unit tests for GameOver Zeus crypto."""

import pytest

from repro.botnets.zeus.crypto import (
    KeystreamCache,
    rc4_keystream,
    visual_decode,
    visual_encode,
    zeus_decrypt,
    zeus_encrypt,
)

KEY = bytes(range(20))
OTHER_KEY = bytes(range(1, 21))


class TestRc4:
    def test_known_vector(self):
        """RFC 6229-style check: RC4("Key") keystream prefix."""
        ks = rc4_keystream(b"Key", 8)
        assert ks.hex() == "eb9f7781b734ca72a719"[:16]

    def test_known_vector_wiki(self):
        # Classic test vector: key "Key", plaintext "Plaintext"
        ks = rc4_keystream(b"Key", 9)
        ct = bytes(k ^ p for k, p in zip(ks, b"Plaintext"))
        assert ct.hex() == "bbf316e8d940af0ad3"

    def test_deterministic(self):
        assert rc4_keystream(KEY, 64) == rc4_keystream(KEY, 64)

    def test_distinct_keys_distinct_streams(self):
        assert rc4_keystream(KEY, 64) != rc4_keystream(OTHER_KEY, 64)

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            rc4_keystream(b"", 8)


class TestKeystreamCache:
    def test_xor_roundtrip(self):
        cache = KeystreamCache()
        data = b"The quick brown fox jumps over the lazy dog"
        assert cache.xor(KEY, cache.xor(KEY, data)) == data

    def test_xor_matches_raw_rc4(self):
        cache = KeystreamCache()
        data = b"hello world"
        expected = bytes(k ^ p for k, p in zip(rc4_keystream(KEY, len(data)), data))
        assert cache.xor(KEY, data) == expected

    def test_empty_data(self):
        assert KeystreamCache().xor(KEY, b"") == b""

    def test_oversized_message_rejected(self):
        with pytest.raises(ValueError):
            KeystreamCache().xor(KEY, b"x" * 5000)

    def test_cache_eviction_safe(self):
        cache = KeystreamCache(max_entries=2)
        data = b"payload"
        first = cache.xor(KEY, data)
        cache.xor(OTHER_KEY, data)
        cache.xor(bytes(20), data)  # evicts
        assert cache.xor(KEY, data) == first


class TestVisualLayer:
    def test_roundtrip(self):
        for data in (b"", b"a", b"ab", b"hello world", bytes(range(256))):
            assert visual_decode(visual_encode(data)) == data

    def test_encode_is_chained_xor(self):
        data = b"\x10\x20\x30"
        encoded = visual_encode(data)
        assert encoded[0] == 0x10
        assert encoded[1] == 0x20 ^ 0x10
        assert encoded[2] == 0x30 ^ 0x20

    def test_encode_changes_data(self):
        assert visual_encode(b"hello world") != b"hello world"


class TestZeusEncryption:
    def test_roundtrip(self):
        plaintext = b"x" * 100
        assert zeus_decrypt(KEY, zeus_encrypt(KEY, plaintext)) == plaintext

    def test_wrong_key_garbles(self):
        plaintext = b"x" * 100
        garbled = zeus_decrypt(OTHER_KEY, zeus_encrypt(KEY, plaintext))
        assert garbled != plaintext

    def test_key_length_enforced(self):
        with pytest.raises(ValueError):
            zeus_encrypt(b"short", b"data")
        with pytest.raises(ValueError):
            zeus_decrypt(b"short", b"data")
