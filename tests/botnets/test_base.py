"""Unit tests for the generic bot machinery (peer lists, BotNode)."""

import random

import pytest

from repro.botnets.base import BotNode, PeerEntry, PeerList
from repro.net.address import parse_ip
from repro.net.transport import Endpoint, Transport, TransportConfig
from repro.sim.scheduler import Scheduler


def entry(ip: str, bot_id: bytes, last_seen: float = 0.0, port: int = 5000) -> PeerEntry:
    return PeerEntry(bot_id=bot_id, endpoint=Endpoint(parse_ip(ip), port), last_seen=last_seen)


class TestPeerList:
    def test_add_and_get(self):
        pl = PeerList(capacity=10)
        assert pl.add(entry("25.0.0.1", b"A"))
        assert len(pl) == 1
        assert pl.get(b"A").endpoint.ip == parse_ip("25.0.0.1")

    def test_refresh_updates_address_and_time(self):
        pl = PeerList(capacity=10)
        pl.add(entry("25.0.0.1", b"A", last_seen=1.0))
        pl.add(entry("25.0.0.99", b"A", last_seen=5.0))
        assert len(pl) == 1
        got = pl.get(b"A")
        assert got.endpoint.ip == parse_ip("25.0.0.99")
        assert got.last_seen == 5.0

    def test_refresh_never_moves_last_seen_backwards(self):
        pl = PeerList(capacity=10)
        pl.add(entry("25.0.0.1", b"A", last_seen=9.0))
        pl.add(entry("25.0.0.1", b"A", last_seen=2.0))
        assert pl.get(b"A").last_seen == 9.0

    def test_capacity_evicts_stalest_for_fresher(self):
        pl = PeerList(capacity=2)
        pl.add(entry("25.0.0.1", b"A", last_seen=1.0))
        pl.add(entry("25.0.0.2", b"B", last_seen=2.0))
        assert pl.add(entry("25.0.0.3", b"C", last_seen=3.0))
        assert b"A" not in pl
        assert len(pl) == 2

    def test_capacity_rejects_staler_newcomer(self):
        pl = PeerList(capacity=1)
        pl.add(entry("25.0.0.1", b"A", last_seen=5.0))
        assert not pl.add(entry("25.0.0.2", b"B", last_seen=1.0))
        assert b"A" in pl

    def test_per_ip_filter(self):
        """Sality-style: one entry per IP (Table 1)."""
        pl = PeerList(capacity=10, ip_filter_prefix=32)
        pl.add(entry("25.0.0.1", b"A"))
        assert not pl.add(entry("25.0.0.1", b"B", port=6000))
        assert pl.add(entry("25.0.0.2", b"B"))

    def test_slash20_filter(self):
        """Zeus-style: one entry per /20 subnet (Section 3.1)."""
        pl = PeerList(capacity=10, ip_filter_prefix=20)
        pl.add(entry("25.0.0.1", b"A"))
        assert not pl.add(entry("25.0.15.254", b"B"))  # same /20
        assert pl.add(entry("25.0.16.1", b"C"))  # next /20

    def test_filter_allows_refresh_of_same_bot(self):
        pl = PeerList(capacity=10, ip_filter_prefix=20)
        pl.add(entry("25.0.0.1", b"A"))
        assert pl.add(entry("25.0.0.2", b"A", last_seen=1.0))

    def test_touch_clears_failures(self):
        pl = PeerList(capacity=10)
        pl.add(entry("25.0.0.1", b"A"))
        pl.record_failure(b"A", evict_after=5)
        pl.touch(b"A", now=10.0)
        got = pl.get(b"A")
        assert got.failures == 0
        assert got.last_seen == 10.0

    def test_eviction_after_repeated_failures(self):
        pl = PeerList(capacity=10)
        pl.add(entry("25.0.0.1", b"A"))
        for _ in range(4):
            assert not pl.record_failure(b"A", evict_after=5)
        assert pl.record_failure(b"A", evict_after=5)
        assert b"A" not in pl

    def test_record_failure_unknown_peer(self):
        assert not PeerList(capacity=2).record_failure(b"Z", evict_after=1)

    def test_ids_and_ips(self):
        pl = PeerList(capacity=10)
        pl.add(entry("25.0.0.1", b"A"))
        pl.add(entry("25.0.0.2", b"B"))
        assert pl.ids() == {b"A", b"B"}
        assert pl.ips() == {parse_ip("25.0.0.1"), parse_ip("25.0.0.2")}

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            PeerList(capacity=0)
        with pytest.raises(ValueError):
            PeerList(capacity=1, ip_filter_prefix=0)


class EchoBot(BotNode):
    """Minimal concrete bot for exercising the base-class plumbing."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.received = []
        self.cycles_run = 0

    def handle_message(self, message):
        self.received.append(message.payload)

    def run_cycle(self):
        self.cycles_run += 1


def make_bot(sched=None, port=5000, interval=100.0):
    sched = sched if sched is not None else Scheduler()
    transport = Transport(
        sched, random.Random(0), config=TransportConfig(loss_rate=0.0)
    )
    bot = EchoBot(
        node_id="bot-0",
        bot_id=b"\x01" * 20,
        endpoint=Endpoint(parse_ip("25.0.0.1"), port),
        transport=transport,
        scheduler=sched,
        rng=random.Random(1),
        cycle_interval=interval,
    )
    return sched, transport, bot


class TestBotNode:
    def test_start_binds_and_cycles(self):
        sched, transport, bot = make_bot()
        bot.start()
        assert transport.is_bound(bot.endpoint)
        sched.run_until(1000.0)
        assert bot.cycles_run >= 9
        assert bot.counters.cycles == bot.cycles_run

    def test_stop_unbinds_and_stops_cycling(self):
        sched, transport, bot = make_bot()
        bot.start()
        sched.run_until(250.0)
        before = bot.cycles_run
        bot.stop()
        sched.run_until(1000.0)
        assert bot.cycles_run == before
        assert not transport.is_bound(bot.endpoint)

    def test_start_twice_is_noop(self):
        sched, transport, bot = make_bot()
        bot.start()
        bot.start()
        assert transport.is_bound(bot.endpoint)

    def test_send_and_receive(self):
        sched, transport, bot = make_bot()
        bot.start()
        other = Endpoint(parse_ip("25.0.0.2"), 5001)
        transport.bind(other, lambda m: None)
        transport.send(other, bot.endpoint, b"ping")
        sched.run_until(1.0)
        assert bot.received == [b"ping"]
        assert bot.counters.messages_in == 1

    def test_rebind_moves_endpoint(self):
        sched, transport, bot = make_bot()
        bot.start()
        new = Endpoint(parse_ip("25.0.0.50"), 5000)
        bot.rebind(new)
        assert bot.endpoint == new
        assert transport.is_bound(new)

    def test_offline_rebind_defers_binding(self):
        sched, transport, bot = make_bot()
        new = Endpoint(parse_ip("25.0.0.50"), 5000)
        bot.rebind(new)
        assert not transport.is_bound(new)
        bot.start()
        assert transport.is_bound(new)
