"""Unit tests for the Sality wire protocol codec."""

import random

import pytest

from repro.botnets.sality import protocol
from repro.botnets.sality.protocol import (
    Command,
    SalityDecodeError,
    SalityMessage,
    decode_packet,
    encode_packet,
)
from repro.net.address import parse_ip
from repro.net.transport import Endpoint


def fresh(command=Command.PEER_REQUEST, payload=b"", minor=protocol.CURRENT_MINOR_VERSION, seed=1):
    return protocol.make_message(
        command, bot_id=0xDEADBEEF, rng=random.Random(seed), payload=payload, minor_version=minor
    )


class TestCodec:
    def test_roundtrip(self):
        message = fresh()
        assert decode_packet(encode_packet(message)) == message

    def test_roundtrip_hello(self):
        message = fresh(Command.HELLO, protocol.encode_hello(4000))
        decoded = decode_packet(encode_packet(message))
        assert protocol.decode_hello(decoded.payload) == 4000

    def test_packet_is_encrypted(self):
        message = fresh(Command.HELLO, protocol.encode_hello(4000))
        wire = encode_packet(message)
        # Plaintext header bytes (major=3, command) must not be visible.
        assert wire[4] != protocol.MAJOR_VERSION or wire[6] != Command.HELLO

    def test_short_packet_rejected(self):
        with pytest.raises(SalityDecodeError):
            decode_packet(b"\x00" * 8)

    def test_corrupted_packet_rejected(self):
        wire = bytearray(encode_packet(fresh()))
        wire[4] ^= 0xFF  # flips the (encrypted) major version byte
        with pytest.raises(SalityDecodeError):
            decode_packet(bytes(wire))

    def test_wrong_minor_version_decodes(self):
        """Minor version mismatches are tolerated on decode -- they are
        an anomaly *signal*, not a protocol failure (Table 2)."""
        message = fresh(minor=1)
        assert decode_packet(encode_packet(message)).minor_version == 1

    def test_nonce_tamper_rejected(self):
        wire = bytearray(encode_packet(fresh()))
        wire[0] ^= 0x01  # clear-nonce prefix no longer matches body
        with pytest.raises(SalityDecodeError):
            decode_packet(bytes(wire))

    def test_unknown_command_rejected(self):
        message = SalityMessage(command=Command.PEER_REQUEST, bot_id=1, nonce=2)
        wire = bytearray(protocol._encode_plain(message))
        wire[2] = 0x77
        nonce_bytes = (2).to_bytes(4, "big")
        body = protocol._keystreams.xor(protocol.NETWORK_KEY + nonce_bytes, bytes(wire))
        with pytest.raises(SalityDecodeError):
            decode_packet(nonce_bytes + body)

    def test_padding_randomized(self):
        rng = random.Random(5)
        lengths = {
            len(protocol.make_message(Command.PEER_REQUEST, 1, rng).padding)
            for _ in range(50)
        }
        assert len(lengths) > 5


class TestPayloads:
    def test_peer_entry_roundtrip(self):
        endpoint = Endpoint(parse_ip("25.0.0.1"), 7000)
        payload = protocol.encode_peer_entry(0xABCD, endpoint)
        assert protocol.decode_peer_entry(payload) == (0xABCD, endpoint)

    def test_empty_peer_response(self):
        assert protocol.decode_peer_entry(b"") is None

    def test_bad_peer_entry_length(self):
        with pytest.raises(SalityDecodeError):
            protocol.decode_peer_entry(b"\x00" * 5)

    def test_zero_port_rejected(self):
        payload = protocol.encode_peer_entry(1, Endpoint(parse_ip("25.0.0.1"), 7000))
        with pytest.raises(SalityDecodeError):
            protocol.decode_peer_entry(payload[:-2] + b"\x00\x00")

    def test_urlpack_roundtrip(self):
        payload = protocol.encode_urlpack(7, b"urls...")
        assert protocol.decode_urlpack(payload) == (7, b"urls...")

    def test_urlpack_length_mismatch(self):
        payload = bytearray(protocol.encode_urlpack(7, b"blob"))
        payload[5] += 1
        with pytest.raises(SalityDecodeError):
            protocol.decode_urlpack(bytes(payload))

    def test_single_entry_constraint_enforced_by_codec(self):
        """A multi-entry response is structurally invalid: Sality only
        ever exchanges one peer per response (Section 4.1.5)."""
        endpoint = Endpoint(parse_ip("25.0.0.1"), 7000)
        two_entries = protocol.encode_peer_entry(1, endpoint) + protocol.encode_peer_entry(2, endpoint)
        message = SalityMessage(
            command=Command.PEER_RESPONSE, bot_id=1, nonce=2, payload=two_entries
        )
        with pytest.raises(SalityDecodeError):
            decode_packet(encode_packet(message))
