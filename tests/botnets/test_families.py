"""Tests for the family feature registry (backing Tables 1 and 5)."""

import pytest

from repro.botnets.families import (
    FAMILIES,
    FAMILY_ORDER,
    Blacklisting,
    IpFilter,
    get_family,
)


class TestRegistry:
    def test_all_six_families_present(self):
        assert set(FAMILY_ORDER) == set(FAMILIES)
        assert len(FAMILIES) == 6

    def test_get_family(self):
        assert get_family("Zeus").name == "Zeus"

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError):
            get_family("Conficker")


class TestTable1Facts:
    """Spot-checks against the paper's Table 1."""

    def test_ip_filters(self):
        assert get_family("Zeus").ip_filter == IpFilter.PER_SLASH20
        assert get_family("Storm").ip_filter == IpFilter.NONE
        for name in ("Sality", "ZeroAccess", "Kelihos/Hlux", "Waledac"):
            assert get_family(name).ip_filter == IpFilter.PER_IP, name

    def test_only_sality_has_reputation(self):
        assert get_family("Sality").reputation == "Goodcount"
        assert all(
            FAMILIES[name].reputation is None for name in FAMILY_ORDER if name != "Sality"
        )

    def test_zeus_blacklisting_auto_and_static(self):
        assert get_family("Zeus").blacklisting == Blacklisting.AUTO_AND_STATIC

    def test_clustering(self):
        assert get_family("Zeus").clustering == "XOR metric"
        assert get_family("Storm").clustering == "XOR metric"
        assert get_family("Kelihos/Hlux").clustering == "Relay core"
        assert get_family("Sality").clustering is None

    def test_disinformation(self):
        assert get_family("ZeroAccess").disinformation == "Junk"
        assert get_family("Storm").disinformation == "Rogue"
        assert get_family("Zeus").disinformation is None

    def test_retaliation(self):
        assert get_family("Zeus").retaliation is not None
        assert get_family("Storm").retaliation is not None
        assert get_family("Sality").retaliation is None

    def test_only_zeroaccess_has_flux(self):
        assert get_family("ZeroAccess").flux == "Peer push"
        assert all(
            FAMILIES[name].flux is None for name in FAMILY_ORDER if name != "ZeroAccess"
        )


class TestTable5Facts:
    """Spot-checks against the paper's Table 5."""

    def test_fixed_ports(self):
        assert not get_family("Zeus").fixed_port
        assert not get_family("Sality").fixed_port
        assert get_family("ZeroAccess").fixed_port
        assert get_family("Kelihos/Hlux").fixed_port
        assert not get_family("Waledac").fixed_port
        assert not get_family("Storm").fixed_port

    def test_probe_construction(self):
        """Only Zeus defeats probe construction (destination-keyed
        encryption requires the bot ID a priori)."""
        assert not get_family("Zeus").probe_constructible
        for name in FAMILY_ORDER:
            if name != "Zeus":
                assert get_family(name).probe_constructible, name

    def test_susceptibility_column(self):
        expected = {
            "Zeus": False,
            "Sality": False,
            "ZeroAccess": True,
            "Kelihos/Hlux": True,
            "Waledac": False,
            "Storm": False,
        }
        for name, susceptible in expected.items():
            assert get_family(name).scanning_susceptible == susceptible, name


class TestProtocolConstants:
    def test_zeus_protocol_facts(self):
        zeus = get_family("Zeus")
        assert zeus.port_range == (1024, 10000)
        assert zeus.peer_list_capacity == 150
        assert zeus.entries_per_response == 10
        assert zeus.suspend_cycle_minutes == 30

    def test_sality_protocol_facts(self):
        sality = get_family("Sality")
        assert sality.peer_list_capacity == 1000
        assert sality.entries_per_response == 1
        assert sality.suspend_cycle_minutes == 40
