"""Edge-case tests for Zeus bot message handling."""

import random

import pytest

from repro.botnets.base import PeerEntry
from repro.botnets.zeus import protocol
from repro.botnets.zeus.bot import ZeusBot, ZeusConfig
from repro.botnets.zeus.protocol import MessageType
from repro.net.address import parse_ip
from repro.net.transport import Endpoint, Transport, TransportConfig
from repro.sim.clock import HOUR
from repro.sim.scheduler import Scheduler


def make_world():
    sched = Scheduler()
    transport = Transport(sched, random.Random(0), config=TransportConfig(loss_rate=0.0))
    return sched, transport


def make_bot(sched, transport, index, **kwargs):
    rng = random.Random(300 + index)
    return ZeusBot(
        node_id=f"bot-{index}",
        bot_id=protocol.random_id(rng),
        endpoint=Endpoint(parse_ip(f"25.{index}.0.1"), 3000 + index),
        transport=transport,
        scheduler=sched,
        rng=rng,
        **kwargs,
    )


def send(transport, src_bot, dst_bot, message):
    transport.send(
        src_bot.endpoint, dst_bot.endpoint, protocol.encrypt_message(message, dst_bot.bot_id)
    )


class TestUnsolicitedReplies:
    def test_unsolicited_peer_list_reply_ignored(self):
        """Peer-list replies with unknown session IDs must not poison
        the peer list (replay/poisoning protection)."""
        sched, transport = make_world()
        a = make_bot(sched, transport, 0)
        b = make_bot(sched, transport, 1)
        a.start()
        b.start()
        junk_entries = [
            (protocol.random_id(random.Random(i)), Endpoint(parse_ip("27.0.0.1") + i, 4000))
            for i in range(5)
        ]
        reply = protocol.make_message(
            MessageType.PEER_LIST_REPLY,
            a.bot_id,
            a.rng,
            payload=protocol.encode_peer_entries(junk_entries),
        )
        send(transport, a, b, reply)
        sched.run_until(10.0)
        assert len(b.peer_list) == 0

    def test_mismatched_reply_type_ignored(self):
        """A reply whose session belongs to a different request type is
        dropped (no type confusion)."""
        sched, transport = make_world()
        a = make_bot(sched, transport, 0, config=ZeusConfig(verify_per_cycle=1))
        b = make_bot(sched, transport, 1)
        a.seed_peers([(b.bot_id, b.endpoint)])
        a.start()
        b.start()
        sched.run_until(0.5)  # before any cycle fires
        # Forge a session: a sends VERSION_REQUEST; we answer with a
        # PEER_LIST_REPLY under the same session.
        a.run_cycle()  # sends version request to b
        session = next(
            sid
            for sid, pending in a._pending.items()
            if pending.msg_type == MessageType.VERSION_REQUEST
        )
        reply = protocol.make_message(
            MessageType.PEER_LIST_REPLY,
            b.bot_id,
            b.rng,
            payload=protocol.encode_peer_entries(
                [(protocol.random_id(random.Random(7)), Endpoint(parse_ip("27.0.0.9"), 4000))]
            ),
            session_id=session,
        )
        send(transport, b, a, reply)
        sched.run_until(5.0)
        assert not any(
            entry.endpoint.ip == parse_ip("27.0.0.9") for entry in a.peer_list
        )

    def test_own_id_never_added_from_replies(self):
        sched, transport = make_world()
        a = make_bot(sched, transport, 0)
        b = make_bot(sched, transport, 1)
        a.seed_peers([(b.bot_id, b.endpoint)])
        a.start()
        b.start()
        # b maliciously advertises a's own identity back to it.
        b.peer_list.add(PeerEntry(bot_id=a.bot_id, endpoint=a.endpoint, last_seen=1.0))
        sched.run_until(6 * HOUR)
        assert a.bot_id not in a.peer_list


class TestProxyAndData:
    def test_proxy_reply_resolves_pending(self):
        sched, transport = make_world()
        a = make_bot(sched, transport, 0)
        b = make_bot(sched, transport, 1)
        a.seed_peers([(b.bot_id, b.endpoint)])
        a.start()
        b.start()
        entry = a.peer_list.get(b.bot_id)
        a._send_request(entry.bot_id, entry.endpoint, MessageType.PROXY_REQUEST, b"")
        assert len(a._pending) == 1
        sched.run_until(10.0)
        assert len(a._pending) == 0

    def test_data_reply_resolves_pending(self):
        sched, transport = make_world()
        a = make_bot(sched, transport, 0)
        b = make_bot(sched, transport, 1)
        a.seed_peers([(b.bot_id, b.endpoint)])
        a.start()
        b.start()
        entry = a.peer_list.get(b.bot_id)
        a._send_request(entry.bot_id, entry.endpoint, MessageType.DATA_REQUEST, b"\x01")
        sched.run_until(10.0)
        assert len(a._pending) == 0

    def test_pending_expires_and_penalizes(self):
        sched, transport = make_world()
        config = ZeusConfig(response_timeout=30.0, evict_after_failures=2)
        a = make_bot(sched, transport, 0, config=config)
        ghost_id = protocol.random_id(random.Random(9))
        a.seed_peers([(ghost_id, Endpoint(parse_ip("27.0.0.1"), 4000))])
        a.start()
        entry = a.peer_list.get(ghost_id)
        a._send_request(entry.bot_id, entry.endpoint, MessageType.VERSION_REQUEST, b"")
        sched.run_until(HOUR)
        a._expire_pending(sched.now)
        assert a.peer_list.get(ghost_id) is None or a.peer_list.get(ghost_id).failures > 0


class TestRequesterPush:
    def test_push_respects_slash20_filter(self):
        """A requester from an occupied /20 is not added twice."""
        sched, transport = make_world()
        hub = make_bot(sched, transport, 0)
        first = make_bot(sched, transport, 1)
        hub.start()
        first.start()
        # Two distinct bot IDs sharing first's /20.
        imposter_rng = random.Random(11)
        imposter_id = protocol.random_id(imposter_rng)
        imposter_endpoint = Endpoint(first.endpoint.ip + 1, 3999)
        transport.bind(imposter_endpoint, lambda m: None)
        for source_id, endpoint in ((first.bot_id, first.endpoint), (imposter_id, imposter_endpoint)):
            message = protocol.make_message(
                MessageType.PEER_LIST_REQUEST, source_id, imposter_rng, payload=hub.bot_id
            )
            transport.send(endpoint, hub.endpoint, protocol.encrypt_message(message, hub.bot_id))
        sched.run_until(10.0)
        in_subnet = [
            entry for entry in hub.peer_list
            if entry.endpoint.ip >> 12 == first.endpoint.ip >> 12
        ]
        assert len(in_subnet) == 1
