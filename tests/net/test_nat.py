"""Unit tests for routability and NAT punch-holes."""

import pytest

from repro.net.address import parse_ip
from repro.net.nat import NatGateway, RoutabilityTable, build_nat_gateways

BOT = (parse_ip("198.51.100.5"), 4000)
NATTED = (parse_ip("203.0.113.9"), 40001)
REMOTE_IP = parse_ip("192.0.2.77")


class TestRoutabilityTable:
    def test_unregistered_endpoint_unreachable(self):
        table = RoutabilityTable()
        assert not table.inbound_allowed(BOT, REMOTE_IP, now=0.0)

    def test_routable_endpoint_reachable(self):
        table = RoutabilityTable()
        table.register(BOT, routable=True)
        assert table.inbound_allowed(BOT, REMOTE_IP, now=0.0)

    def test_non_routable_blocked_without_hole(self):
        table = RoutabilityTable()
        table.register(NATTED, routable=False)
        assert not table.inbound_allowed(NATTED, REMOTE_IP, now=0.0)

    def test_outbound_opens_hole_for_that_remote_only(self):
        table = RoutabilityTable()
        table.register(NATTED, routable=False)
        table.note_outbound(NATTED, REMOTE_IP, now=0.0)
        assert table.inbound_allowed(NATTED, REMOTE_IP, now=1.0)
        assert not table.inbound_allowed(NATTED, parse_ip("8.8.8.8"), now=1.0)

    def test_hole_expires(self):
        table = RoutabilityTable(hole_ttl=10.0)
        table.register(NATTED, routable=False)
        table.note_outbound(NATTED, REMOTE_IP, now=0.0)
        assert table.inbound_allowed(NATTED, REMOTE_IP, now=9.9)
        assert not table.inbound_allowed(NATTED, REMOTE_IP, now=10.1)

    def test_outbound_refreshes_hole(self):
        table = RoutabilityTable(hole_ttl=10.0)
        table.register(NATTED, routable=False)
        table.note_outbound(NATTED, REMOTE_IP, now=0.0)
        table.note_outbound(NATTED, REMOTE_IP, now=8.0)
        assert table.inbound_allowed(NATTED, REMOTE_IP, now=15.0)

    def test_routable_endpoint_opens_no_holes(self):
        table = RoutabilityTable()
        table.register(BOT, routable=True)
        table.note_outbound(BOT, REMOTE_IP, now=0.0)
        assert table.open_holes(BOT, now=1.0) == set()

    def test_unregister_clears_holes(self):
        table = RoutabilityTable()
        table.register(NATTED, routable=False)
        table.note_outbound(NATTED, REMOTE_IP, now=0.0)
        table.unregister(NATTED)
        table.register(NATTED, routable=False)
        assert not table.inbound_allowed(NATTED, REMOTE_IP, now=1.0)

    def test_open_holes_listing(self):
        table = RoutabilityTable()
        table.register(NATTED, routable=False)
        table.note_outbound(NATTED, REMOTE_IP, now=0.0)
        table.note_outbound(NATTED, parse_ip("8.8.4.4"), now=0.0)
        assert table.open_holes(NATTED, now=1.0) == {REMOTE_IP, parse_ip("8.8.4.4")}


class TestNatGateway:
    def test_hosts_share_ip_with_distinct_ports(self):
        gw = NatGateway(public_ip=parse_ip("203.0.113.9"))
        a = gw.map_host()
        b = gw.map_host()
        assert a[0] == b[0] == parse_ip("203.0.113.9")
        assert a[1] != b[1]
        assert gw.occupancy == 2

    def test_port_exhaustion(self):
        gw = NatGateway(public_ip=parse_ip("203.0.113.9"), base_port=65535)
        gw.map_host()
        with pytest.raises(RuntimeError):
            gw.map_host()

    def test_build_nat_gateways(self):
        ips = [parse_ip("203.0.113.1"), parse_ip("203.0.113.2")]
        gws = build_nat_gateways(ips, [3, 1])
        assert [g.occupancy for g in gws] == [3, 1]

    def test_build_nat_gateways_misaligned_rejected(self):
        with pytest.raises(ValueError):
            build_nat_gateways([parse_ip("203.0.113.1")], [1, 2])
