"""Unit tests for the message transport."""

import random

import pytest

from repro.net.address import parse_ip
from repro.net.transport import Endpoint, Transport, TransportConfig
from repro.sim.scheduler import Scheduler

A = Endpoint(parse_ip("198.51.100.1"), 5000)
B = Endpoint(parse_ip("198.51.100.2"), 5001)
NATTED = Endpoint(parse_ip("203.0.113.9"), 40001)


def make_transport(loss_rate=0.0, seed=0):
    sched = Scheduler()
    config = TransportConfig(latency_min=0.01, latency_max=0.05, loss_rate=loss_rate)
    return sched, Transport(sched, random.Random(seed), config=config)


class TestEndpoint:
    def test_str(self):
        assert str(A) == "198.51.100.1:5000"

    def test_validation(self):
        with pytest.raises(ValueError):
            Endpoint(-1, 80)
        with pytest.raises(ValueError):
            Endpoint(parse_ip("1.2.3.4"), 0)
        with pytest.raises(ValueError):
            Endpoint(parse_ip("1.2.3.4"), 70000)

    def test_ordering_and_hashing(self):
        assert A < B
        assert len({A, A, B}) == 2


class TestDelivery:
    def test_basic_delivery(self):
        sched, transport = make_transport()
        inbox = []
        transport.bind(A, inbox.append)
        transport.bind(B, lambda m: None)
        assert transport.send(B, A, b"hello")
        sched.run()
        assert len(inbox) == 1
        assert inbox[0].payload == b"hello"
        assert inbox[0].src == B
        assert inbox[0].delivered_at >= inbox[0].sent_at

    def test_latency_within_bounds(self):
        sched, transport = make_transport()
        inbox = []
        transport.bind(A, inbox.append)
        transport.bind(B, lambda m: None)
        transport.send(B, A, b"x")
        sched.run()
        delay = inbox[0].delivered_at - inbox[0].sent_at
        assert 0.01 <= delay <= 0.05

    def test_unbound_source_rejected(self):
        """Non-spoofable identity: cannot send from an address not bound."""
        sched, transport = make_transport()
        transport.bind(A, lambda m: None)
        assert not transport.send(B, A, b"spoof")
        assert transport.stats.rejected_unbound_src == 1

    def test_unbound_destination_dropped(self):
        sched, transport = make_transport()
        transport.bind(B, lambda m: None)
        assert transport.send(B, A, b"x")  # accepted...
        sched.run()
        assert transport.stats.dropped_unbound_dst == 1

    def test_double_bind_rejected(self):
        _, transport = make_transport()
        transport.bind(A, lambda m: None)
        with pytest.raises(ValueError):
            transport.bind(A, lambda m: None)

    def test_loss(self):
        sched, transport = make_transport(loss_rate=0.5, seed=3)
        received = []
        transport.bind(A, received.append)
        transport.bind(B, lambda m: None)
        for _ in range(200):
            transport.send(B, A, b"x")
        sched.run()
        assert transport.stats.dropped_loss > 50
        assert len(received) == transport.stats.delivered
        assert transport.stats.delivered + transport.stats.dropped_loss == 200


class TestNatSemantics:
    def test_unsolicited_to_natted_dropped(self):
        sched, transport = make_transport()
        inbox = []
        transport.bind(NATTED, inbox.append, routable=False)
        transport.bind(A, lambda m: None)
        transport.send(A, NATTED, b"probe")
        sched.run()
        assert inbox == []
        assert transport.stats.dropped_unroutable == 1

    def test_reply_through_punch_hole(self):
        sched, transport = make_transport()
        natted_inbox = []
        transport.bind(NATTED, natted_inbox.append, routable=False)
        transport.bind(A, lambda m: transport.send(A, m.src, b"reply"))
        transport.send(NATTED, A, b"hello")  # opens the hole
        sched.run()
        assert len(natted_inbox) == 1
        assert natted_inbox[0].payload == b"reply"


class TestRebind:
    def test_rebind_moves_traffic(self):
        sched, transport = make_transport()
        inbox = []
        transport.bind(A, inbox.append)
        transport.bind(B, lambda m: None)
        new = Endpoint(parse_ip("198.51.100.77"), 5000)
        transport.rebind(A, new)
        transport.send(B, new, b"x")
        sched.run()
        assert len(inbox) == 1
        assert not transport.is_bound(A)

    def test_rebind_preserves_routability(self):
        sched, transport = make_transport()
        transport.bind(NATTED, lambda m: None, routable=False)
        transport.bind(A, lambda m: None)
        new = Endpoint(parse_ip("203.0.113.50"), 40001)
        transport.rebind(NATTED, new)
        transport.send(A, new, b"probe")
        sched.run()
        assert transport.stats.dropped_unroutable == 1

    def test_rebind_unbound_rejected(self):
        _, transport = make_transport()
        with pytest.raises(ValueError):
            transport.rebind(A, B)


class TestTaps:
    def test_tap_sees_delivered_and_dropped(self):
        sched, transport = make_transport()
        observed = []
        transport.add_tap(lambda m, ok: observed.append((m.payload, ok)))
        transport.bind(A, lambda m: None)
        transport.bind(NATTED, lambda m: None, routable=False)
        transport.send(A, NATTED, b"blocked")
        sched.run()
        assert observed == [(b"blocked", False)]

    def test_drop_tap_reports_reason(self):
        sched, transport = make_transport(loss_rate=0.5, seed=3)
        drops = []
        transport.add_drop_tap(lambda m, reason: drops.append(reason))
        transport.bind(A, lambda m: None)
        transport.bind(B, lambda m: None)
        transport.bind(NATTED, lambda m: None, routable=False)
        transport.send(A, NATTED, b"x")  # unroutable
        transport.send(A, Endpoint(parse_ip("198.51.100.99"), 5), b"x")  # unbound dst
        for _ in range(50):
            transport.send(B, A, b"x")  # some eaten by loss
        sched.run()
        assert "unroutable" in drops
        assert "unbound_dst" in drops
        assert drops.count("loss") == transport.stats.dropped_loss > 0

    def test_drop_tap_sees_unbound_src_rejection(self):
        _, transport = make_transport()
        drops = []
        transport.add_drop_tap(lambda m, reason: drops.append(reason))
        transport.bind(A, lambda m: None)
        assert not transport.send(B, A, b"spoof")
        assert drops == ["unbound_src"]


class TestFaultKnobs:
    def test_duplication_counted_and_delivered_twice(self):
        sched = Scheduler()
        config = TransportConfig(
            latency_min=0.01, latency_max=0.05, loss_rate=0.0, duplicate_rate=0.99
        )
        transport = Transport(sched, random.Random(1), config=config)
        inbox = []
        transport.bind(A, inbox.append)
        transport.bind(B, lambda m: None)
        for _ in range(20):
            transport.send(B, A, b"x")
        sched.run()
        assert transport.stats.duplicated > 0
        assert len(inbox) == 20 + transport.stats.duplicated

    def test_reordering_counted_and_delays_delivery(self):
        sched = Scheduler()
        config = TransportConfig(
            latency_min=0.01, latency_max=0.02, loss_rate=0.0,
            reorder_rate=0.5, reorder_extra=10.0,
        )
        transport = Transport(sched, random.Random(2), config=config)
        inbox = []
        transport.bind(A, inbox.append)
        transport.bind(B, lambda m: None)
        for _ in range(40):
            transport.send(B, A, b"x")
        sched.run()
        assert transport.stats.reordered > 0
        late = [m for m in inbox if m.delivered_at - m.sent_at > 5.0]
        assert len(late) == transport.stats.reordered

    def test_zero_rates_draw_no_extra_rng(self):
        """Replay invariant: the fault knobs at zero must not perturb
        the RNG stream of existing runs."""
        def deliveries(config):
            sched = Scheduler()
            transport = Transport(sched, random.Random(7), config=config)
            inbox = []
            transport.bind(A, inbox.append)
            transport.bind(B, lambda m: None)
            for _ in range(30):
                transport.send(B, A, b"x")
            sched.run()
            return [(m.sent_at, m.delivered_at) for m in inbox]

        plain = deliveries(TransportConfig(latency_min=0.01, latency_max=0.05))
        zeroed = deliveries(
            TransportConfig(
                latency_min=0.01, latency_max=0.05,
                duplicate_rate=0.0, reorder_rate=0.0,
            )
        )
        assert plain == zeroed

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TransportConfig(duplicate_rate=1.0)
        with pytest.raises(ValueError):
            TransportConfig(reorder_rate=-0.1)
        with pytest.raises(ValueError):
            TransportConfig(reorder_extra=0.0)
        with pytest.raises(ValueError):
            TransportConfig(loss_rate=1.5)
