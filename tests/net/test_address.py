"""Unit tests for IPv4 addressing primitives."""

import random

import pytest

from repro.net.address import (
    AddressPool,
    Subnet,
    format_ip,
    ip_in_any,
    is_reserved,
    parse_ip,
    prefix_mask,
    prefix_of,
    same_prefix,
    subnet_key,
)


class TestParseFormat:
    def test_roundtrip(self):
        for text in ("0.0.0.0", "10.0.0.1", "255.255.255.255", "192.0.2.55"):
            assert format_ip(parse_ip(text)) == text

    def test_parse_rejects_bad_quad(self):
        for bad in ("1.2.3", "1.2.3.4.5", "1.2.3.256", "a.b.c.d"):
            with pytest.raises(ValueError):
                parse_ip(bad)

    def test_format_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            format_ip(2**32)
        with pytest.raises(ValueError):
            format_ip(-1)


class TestMasks:
    def test_prefix_mask_extremes(self):
        assert prefix_mask(0) == 0
        assert prefix_mask(32) == 0xFFFFFFFF

    def test_prefix_mask_20(self):
        assert prefix_mask(20) == parse_ip("255.255.240.0")

    def test_subnet_key_slash20(self):
        a = parse_ip("198.51.100.7")
        b = parse_ip("198.51.111.250")  # same /20 as a (198.51.96.0/20)
        c = parse_ip("198.51.112.1")  # next /20
        assert subnet_key(a, 20) == subnet_key(b, 20)
        assert subnet_key(a, 20) != subnet_key(c, 20)

    def test_slash32_is_identity(self):
        ip = parse_ip("1.2.3.4")
        assert subnet_key(ip, 32) == ip

    def test_bad_prefix_rejected(self):
        with pytest.raises(ValueError):
            prefix_mask(33)


class TestSubnet:
    def test_parse_and_str(self):
        net = Subnet.parse("198.51.100.0/24")
        assert str(net) == "198.51.100.0/24"
        assert net.size == 256

    def test_parse_masks_host_bits(self):
        assert Subnet.parse("198.51.100.77/24").network == parse_ip("198.51.100.0")

    def test_host_bits_rejected_in_constructor(self):
        with pytest.raises(ValueError):
            Subnet(parse_ip("198.51.100.1"), 24)

    def test_missing_prefix_rejected(self):
        with pytest.raises(ValueError):
            Subnet.parse("198.51.100.0")

    def test_contains(self):
        net = Subnet.parse("198.51.100.0/24")
        assert parse_ip("198.51.100.255") in net
        assert parse_ip("198.51.101.0") not in net

    def test_iteration_covers_block(self):
        net = Subnet.parse("198.51.100.0/30")
        assert list(net) == [net.network + i for i in range(4)]

    def test_random_ip_inside(self):
        net = Subnet.parse("198.51.100.0/24")
        rng = random.Random(0)
        assert all(net.random_ip(rng) in net for _ in range(100))

    def test_subdivide(self):
        parts = Subnet.parse("198.51.96.0/20").subdivide(24)
        assert len(parts) == 16
        assert parts[0] == Subnet.parse("198.51.96.0/24")
        assert parts[-1] == Subnet.parse("198.51.111.0/24")

    def test_subdivide_shorter_prefix_rejected(self):
        with pytest.raises(ValueError):
            Subnet.parse("198.51.100.0/24").subdivide(20)

    def test_blocks_is_lazy_subdivide(self):
        net = Subnet.parse("198.51.96.0/20")
        gen = net.blocks(24)
        assert next(gen) == Subnet.parse("198.51.96.0/24")
        assert list(net.blocks(24)) == net.subdivide(24)


class TestPrefixHelpers:
    def test_prefix_of(self):
        assert prefix_of(parse_ip("198.51.100.77"), 24) == Subnet.parse(
            "198.51.100.0/24"
        )

    def test_prefix_of_contains_ip(self):
        ip = parse_ip("10.20.30.40")
        for prefix in (8, 12, 19, 24, 32):
            assert ip in prefix_of(ip, prefix)

    def test_same_prefix(self):
        a, b = parse_ip("198.51.100.1"), parse_ip("198.51.100.200")
        assert same_prefix(a, b, 24)
        assert not same_prefix(a, parse_ip("198.51.101.1"), 24)

    def test_same_prefix_zero_matches_everything(self):
        assert same_prefix(0, parse_ip("255.255.255.255"), 0)

    def test_same_prefix_agrees_with_subnet_key(self):
        a, b = parse_ip("10.1.2.3"), parse_ip("10.1.9.9")
        for prefix in range(0, 33):
            assert same_prefix(a, b, prefix) == (
                subnet_key(a, prefix) == subnet_key(b, prefix)
            )


class TestReserved:
    def test_private_and_loopback_reserved(self):
        for text in ("10.1.2.3", "127.0.0.1", "192.168.1.1", "224.0.0.5", "0.1.2.3"):
            assert is_reserved(parse_ip(text)), text

    def test_public_not_reserved(self):
        for text in ("8.8.8.8", "198.51.96.1", "93.184.216.34"):
            assert not is_reserved(parse_ip(text)), text

    def test_ip_in_any(self):
        blocks = [Subnet.parse("198.51.100.0/24"), Subnet.parse("203.0.113.0/24")]
        assert ip_in_any(parse_ip("203.0.113.9"), blocks)
        assert not ip_in_any(parse_ip("8.8.8.8"), blocks)


class TestAddressPool:
    def make_pool(self, cidrs=("198.51.100.0/28",)):
        return AddressPool([Subnet.parse(c) for c in cidrs], random.Random(1))

    def test_allocations_unique(self):
        pool = self.make_pool()
        seen = {pool.allocate() for _ in range(16)}
        assert len(seen) == 16

    def test_exhaustion_raises(self):
        pool = self.make_pool()
        for _ in range(16):
            pool.allocate()
        with pytest.raises(RuntimeError):
            pool.allocate()

    def test_release_recycles(self):
        pool = self.make_pool()
        ips = [pool.allocate() for _ in range(16)]
        pool.release(ips[0])
        assert pool.allocate() == ips[0]

    def test_allocate_within_block(self):
        pool = self.make_pool(cidrs=("198.51.100.0/24",))
        within = Subnet.parse("198.51.100.0/28")
        ip = pool.allocate(within=within)
        assert ip in within

    def test_allocate_within_foreign_block_rejected(self):
        pool = self.make_pool()
        with pytest.raises(ValueError):
            pool.allocate(within=Subnet.parse("203.0.113.0/24"))

    def test_reserved_addresses_never_allocated(self):
        pool = AddressPool([Subnet.parse("192.168.0.0/30")], random.Random(1))
        with pytest.raises(RuntimeError):
            pool.allocate()  # whole block is reserved space

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            AddressPool([], random.Random(1))

    def test_capacity(self):
        assert self.make_pool().capacity == 16
