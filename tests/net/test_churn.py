"""Unit tests for churn models."""

import random

import pytest

from repro.net.churn import ChurnConfig, ChurnProcess, DiurnalModel, IpChurnProcess
from repro.sim.clock import DAY, HOUR
from repro.sim.scheduler import Scheduler


class TestDiurnalModel:
    def test_probability_in_bounds_all_day(self):
        model = DiurnalModel()
        for hour in range(25):
            p = model.online_probability(hour * HOUR)
            assert model.min_p <= p <= model.max_p

    def test_peak_at_peak_hour(self):
        model = DiurnalModel(peak_hour=20.0)
        peak = model.online_probability(20 * HOUR)
        trough = model.online_probability(8 * HOUR)
        assert peak > trough

    def test_period_is_one_day(self):
        model = DiurnalModel()
        assert model.online_probability(3 * HOUR) == pytest.approx(
            model.online_probability(3 * HOUR + DAY)
        )


class TestChurnProcess:
    def make(self, seed=0, **kwargs):
        sched = Scheduler()
        ups, downs = [], []
        proc = ChurnProcess(
            sched,
            random.Random(seed),
            ChurnConfig(**kwargs),
            on_up=ups.append,
            on_down=downs.append,
        )
        return sched, proc, ups, downs

    def test_nodes_flip_state_over_time(self):
        sched, proc, ups, downs = self.make(mean_session=HOUR, mean_offline=HOUR)
        for i in range(20):
            proc.add_node(f"bot-{i}")
        sched.run_until(DAY)
        assert proc.transitions > 0
        assert len(downs) > 0

    def test_duplicate_node_rejected(self):
        _, proc, _, _ = self.make()
        proc.add_node("bot-0")
        with pytest.raises(ValueError):
            proc.add_node("bot-0")

    def test_online_count_tracks_states(self):
        sched, proc, ups, downs = self.make(mean_session=HOUR, mean_offline=HOUR)
        for i in range(50):
            proc.add_node(f"bot-{i}", online=True)
        assert proc.online_count() == 50
        sched.run_until(2 * DAY)
        assert proc.online_count() == 50 - len(downs) + len(ups)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            ChurnConfig(mean_session=0)

    def test_diurnal_bias_reduces_trough_population(self):
        """With a strong diurnal model, fewer bots are online at the trough."""
        diurnal = DiurnalModel(base=0.5, amplitude=0.45, peak_hour=20.0)
        sched = Scheduler()
        proc = ChurnProcess(
            sched,
            random.Random(7),
            ChurnConfig(mean_session=2 * HOUR, mean_offline=2 * HOUR, diurnal=diurnal),
            on_up=lambda n: None,
            on_down=lambda n: None,
        )
        for i in range(400):
            proc.add_node(f"bot-{i}")
        sched.run_until(8 * HOUR)  # trough (peak 20:00)
        trough = proc.online_count()
        sched.run_until(20 * HOUR)  # peak
        peak = proc.online_count()
        assert peak > trough


class TestIpChurn:
    def test_reassignments_fire(self):
        sched = Scheduler()
        seen = []
        churn = IpChurnProcess(sched, random.Random(0), seen.append, mean_lease=6 * HOUR)
        for i in range(10):
            churn.add_node(f"bot-{i}")
        sched.run_until(2 * DAY)
        assert churn.reassignments == len(seen) > 0

    def test_invalid_lease_rejected(self):
        with pytest.raises(ValueError):
            IpChurnProcess(Scheduler(), random.Random(0), lambda n: None, mean_lease=0)
