"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_table_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table", "5"])
        assert args.number == 5
        with pytest.raises(SystemExit):
            parser.parse_args(["table", "2"])  # heavy exhibits are benches

    def test_crawl_defaults(self):
        args = build_parser().parse_args(["crawl"])
        assert args.scale == "tiny"
        assert args.contact_ratio == 1
        assert not args.hard_hitter

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestTableCommand:
    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        out = capsys.readouterr().out
        assert "Anti-recon measures" in out

    def test_table5(self, capsys):
        assert main(["table", "5"]) == 0
        assert "ZeroAccess" in capsys.readouterr().out

    def test_table6(self, capsys):
        assert main(["table", "6"]) == 0
        assert "Sensor injection" in capsys.readouterr().out


class TestChaosCommand:
    def test_list_kinds(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        assert "burst-loss" in out
        assert "leader-crash" in out

    def test_unknown_kind_rejected(self, capsys):
        assert main(["chaos", "--kinds", "meteor-strike"]) == 2
        assert "unknown kind" in capsys.readouterr().err

    def test_bad_intensity_rejected(self, capsys):
        assert main(["chaos", "--kinds", "baseline", "--intensities", "1.5"]) == 2
        assert "intensities" in capsys.readouterr().err

    def test_chaos_matrix_prints_degradation_report(self, capsys):
        assert main([
            "chaos", "--kinds", "baseline", "blackout",
            "--intensities", "0.2", "--hours", "2", "--sensors", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "coverage" in out
        assert "blackout" in out

    def test_chaos_json_output(self, capsys):
        import json

        assert main([
            "chaos", "--kinds", "burst-loss",
            "--intensities", "0.2", "--hours", "2", "--sensors", "8", "--json",
        ]) == 0
        cells = json.loads(capsys.readouterr().out)
        assert len(cells) == 1
        assert cells[0]["kind"] == "burst-loss"
        assert 0.0 <= cells[0]["coverage"] <= 1.0


class TestCrawlCommand:
    def test_crawl_runs(self, capsys):
        assert main(["crawl", "--hours", "2", "--sensors", "4", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "distinct IPs" in out
        assert "edges collected" in out

    def test_detect_runs(self, capsys):
        assert main(
            ["detect", "--hours", "3", "--sensors", "16", "--seed", "3", "--hard-hitter"]
        ) == 0
        out = capsys.readouterr().out
        assert "coverage-based detection" in out
        assert "DETECTED" in out


class TestObservabilityFlags:
    def test_crawl_writes_trace_and_metrics(self, tmp_path, capsys):
        import json

        trace = str(tmp_path / "crawl.trace.jsonl")
        metrics = str(tmp_path / "crawl.metrics.json")
        assert main([
            "crawl", "--hours", "1", "--sensors", "4", "--seed", "3",
            "--trace", trace, "--metrics", metrics,
        ]) == 0
        events = [json.loads(line) for line in open(trace) if line.strip()]
        assert events
        assert {e["cat"] for e in events} >= {"net", "crawler"}
        snapshot = json.load(open(metrics))
        assert snapshot["net.sent"]["values"][""] > 0
        assert "sched.dispatched" in snapshot

    def test_trace_output_is_deterministic(self, tmp_path, capsys):
        runs = []
        for name in ("a.jsonl", "b.jsonl"):
            path = tmp_path / name
            assert main([
                "crawl", "--hours", "1", "--sensors", "4", "--seed", "7",
                "--trace", str(path),
            ]) == 0
            capsys.readouterr()
            runs.append(path.read_bytes())
        assert runs[0] == runs[1]

    def test_flight_recorder_caps_trace(self, tmp_path, capsys):
        trace = str(tmp_path / "capped.jsonl")
        assert main([
            "crawl", "--hours", "1", "--sensors", "4", "--seed", "3",
            "--trace", trace, "--flight-recorder", "100",
        ]) == 0
        assert sum(1 for line in open(trace) if line.strip()) == 100

    def test_metrics_dash_prints_to_stdout(self, capsys):
        import json

        assert main([
            "detect", "--hours", "2", "--sensors", "8", "--seed", "3",
            "--metrics", "-",
        ]) == 0
        out = capsys.readouterr().out
        start = out.index("{")
        snapshot = json.loads(out[start:])
        assert "detect.rounds" in snapshot


class TestTraceCommand:
    @pytest.fixture()
    def trace_file(self, tmp_path, capsys):
        path = str(tmp_path / "run.trace.jsonl")
        assert main([
            "crawl", "--hours", "1", "--sensors", "4", "--seed", "3",
            "--trace", path,
        ]) == 0
        capsys.readouterr()
        return path

    def test_summary(self, trace_file, capsys):
        assert main(["trace", "summary", trace_file]) == 0
        out = capsys.readouterr().out
        assert "events" in out
        assert "net" in out

    def test_events_tail_and_category_filter(self, trace_file, capsys):
        assert main(["trace", "events", trace_file, "--cat", "crawler", "--tail", "5"]) == 0
        lines = [line for line in capsys.readouterr().out.splitlines() if line]
        assert 0 < len(lines) <= 5
        assert all("crawler" in line for line in lines)

    def test_convert_emits_chrome_trace(self, trace_file, capsys, tmp_path):
        import json

        out_path = str(tmp_path / "run.chrome.json")
        assert main(["trace", "convert", trace_file, "-o", out_path]) == 0
        doc = json.load(open(out_path))
        assert "traceEvents" in doc
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert "M" in phases and "i" in phases

    def test_missing_file_is_an_error(self, capsys, tmp_path):
        assert main(["trace", "summary", str(tmp_path / "nope.jsonl")]) == 2
        assert capsys.readouterr().err
