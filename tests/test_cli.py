"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_table_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table", "5"])
        assert args.number == 5
        with pytest.raises(SystemExit):
            parser.parse_args(["table", "2"])  # heavy exhibits are benches

    def test_crawl_defaults(self):
        args = build_parser().parse_args(["crawl"])
        assert args.scale == "tiny"
        assert args.contact_ratio == 1
        assert not args.hard_hitter

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestTableCommand:
    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        out = capsys.readouterr().out
        assert "Anti-recon measures" in out

    def test_table5(self, capsys):
        assert main(["table", "5"]) == 0
        assert "ZeroAccess" in capsys.readouterr().out

    def test_table6(self, capsys):
        assert main(["table", "6"]) == 0
        assert "Sensor injection" in capsys.readouterr().out


class TestChaosCommand:
    def test_list_kinds(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        assert "burst-loss" in out
        assert "leader-crash" in out

    def test_unknown_kind_rejected(self, capsys):
        assert main(["chaos", "--kinds", "meteor-strike"]) == 2
        assert "unknown kind" in capsys.readouterr().err

    def test_bad_intensity_rejected(self, capsys):
        assert main(["chaos", "--kinds", "baseline", "--intensities", "1.5"]) == 2
        assert "intensities" in capsys.readouterr().err

    def test_chaos_matrix_prints_degradation_report(self, capsys):
        assert main([
            "chaos", "--kinds", "baseline", "blackout",
            "--intensities", "0.2", "--hours", "2", "--sensors", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "coverage" in out
        assert "blackout" in out

    def test_chaos_json_output(self, capsys):
        import json

        assert main([
            "chaos", "--kinds", "burst-loss",
            "--intensities", "0.2", "--hours", "2", "--sensors", "8", "--json",
        ]) == 0
        cells = json.loads(capsys.readouterr().out)
        assert len(cells) == 1
        assert cells[0]["kind"] == "burst-loss"
        assert 0.0 <= cells[0]["coverage"] <= 1.0


class TestTopoCommand:
    def test_info(self, capsys):
        assert main(["topo", "info", "--topology", "synth:7"]) == 0
        out = capsys.readouterr().out
        assert "synth:7" in out
        assert "AS1:" in out

    def test_paths(self, capsys):
        assert main([
            "topo", "paths", "--topology", "synth:7", "--count", "3", "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("->") >= 3

    def test_explicit_pair(self, capsys):
        assert main([
            "topo", "paths", "--topology", "synth:7", "--src", "6", "--dst", "7",
        ]) == 0
        assert "AS6 -> AS7" in capsys.readouterr().out

    def test_flat_rejected(self, capsys):
        assert main(["topo", "info"]) == 2
        assert "topology" in capsys.readouterr().err

    def test_bad_spec_rejected(self, capsys):
        assert main(["topo", "info", "--topology", "mesh:1"]) == 2

    def test_chaos_as_cut_without_topology_rejected(self, capsys):
        assert main([
            "chaos", "--kinds", "as-cut", "--intensities", "0.5",
            "--hours", "1", "--sensors", "4",
        ]) == 2
        assert "topology" in capsys.readouterr().err

    def test_crawl_accepts_topology(self, capsys):
        assert main([
            "crawl", "--hours", "1", "--sensors", "4", "--seed", "3",
            "--topology", "synth:7",
        ]) == 0

    def test_crawl_output_identical_with_and_without_flat_spec(self, capsys):
        assert main(["crawl", "--hours", "1", "--sensors", "4", "--seed", "3"]) == 0
        plain = capsys.readouterr().out
        assert main([
            "crawl", "--hours", "1", "--sensors", "4", "--seed", "3",
            "--topology", "flat",
        ]) == 0
        assert capsys.readouterr().out == plain


class TestCrawlCommand:
    def test_crawl_runs(self, capsys):
        assert main(["crawl", "--hours", "2", "--sensors", "4", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "distinct IPs" in out
        assert "edges collected" in out

    def test_detect_runs(self, capsys):
        assert main(
            ["detect", "--hours", "3", "--sensors", "16", "--seed", "3", "--hard-hitter"]
        ) == 0
        out = capsys.readouterr().out
        assert "coverage-based detection" in out
        assert "DETECTED" in out


class TestObservabilityFlags:
    def test_crawl_writes_trace_and_metrics(self, tmp_path, capsys):
        import json

        trace = str(tmp_path / "crawl.trace.jsonl")
        metrics = str(tmp_path / "crawl.metrics.json")
        assert main([
            "crawl", "--hours", "1", "--sensors", "4", "--seed", "3",
            "--trace", trace, "--metrics", metrics,
        ]) == 0
        events = [json.loads(line) for line in open(trace) if line.strip()]
        assert events
        assert {e["cat"] for e in events} >= {"net", "crawler"}
        snapshot = json.load(open(metrics))
        assert snapshot["net.sent"]["values"][""] > 0
        assert "sched.dispatched" in snapshot

    def test_trace_output_is_deterministic(self, tmp_path, capsys):
        runs = []
        for name in ("a.jsonl", "b.jsonl"):
            path = tmp_path / name
            assert main([
                "crawl", "--hours", "1", "--sensors", "4", "--seed", "7",
                "--trace", str(path),
            ]) == 0
            capsys.readouterr()
            runs.append(path.read_bytes())
        assert runs[0] == runs[1]

    def test_flight_recorder_caps_trace(self, tmp_path, capsys):
        trace = str(tmp_path / "capped.jsonl")
        assert main([
            "crawl", "--hours", "1", "--sensors", "4", "--seed", "3",
            "--trace", trace, "--flight-recorder", "100",
        ]) == 0
        assert sum(1 for line in open(trace) if line.strip()) == 100

    def test_metrics_dash_prints_to_stdout(self, capsys):
        import json

        assert main([
            "detect", "--hours", "2", "--sensors", "8", "--seed", "3",
            "--metrics", "-",
        ]) == 0
        out = capsys.readouterr().out
        start = out.index("{")
        snapshot = json.loads(out[start:])
        assert "detect.rounds" in snapshot


class TestProfilingAndTelemetryFlags:
    def test_crawl_profile_writes_speedscope(self, tmp_path, capsys):
        import json

        path = tmp_path / "crawl.speedscope.json"
        assert main([
            "crawl", "--hours", "1", "--sensors", "4", "--seed", "3",
            "--profile", str(path),
        ]) == 0
        doc = json.loads(path.read_text())
        assert doc["$schema"] == "https://www.speedscope.app/file-format-schema.json"
        assert doc["profiles"][0]["samples"]

    def test_crawl_profile_collapsed_suffix(self, tmp_path, capsys):
        path = tmp_path / "crawl.collapsed"
        assert main([
            "crawl", "--hours", "1", "--sensors", "4", "--seed", "3",
            "--profile", str(path),
        ]) == 0
        lines = path.read_text().splitlines()
        assert lines and all(len(l.rsplit(" ", 1)) == 2 for l in lines)

    def test_crawl_telemetry_stream_and_top(self, tmp_path, capsys):
        import json

        path = tmp_path / "crawl.telemetry.jsonl"
        assert main([
            "crawl", "--hours", "1", "--sensors", "4", "--seed", "3",
            "--telemetry", str(path),
        ]) == 0
        capsys.readouterr()
        snapshots = [json.loads(l) for l in open(path) if l.strip()]
        assert snapshots  # finalize guarantees at least one
        assert snapshots[-1]["dispatched"] > 0
        # repro top replays the stream.
        assert main(["top", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ev/s" in out and "sim" in out

    def test_top_missing_or_empty_file_is_error(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["top", str(empty)]) == 1

    def test_crawl_output_identical_with_profiling_enabled(self, tmp_path, capsys):
        base_args = ["crawl", "--hours", "1", "--sensors", "4", "--seed", "7"]
        assert main(base_args) == 0
        bare = capsys.readouterr().out
        assert main(base_args + [
            "--profile", str(tmp_path / "p.speedscope.json"),
            "--telemetry", str(tmp_path / "t.jsonl"),
        ]) == 0
        instrumented = capsys.readouterr().out
        assert instrumented == bare

    def test_profile_subcommand_emits_speedscope(self, tmp_path, capsys, monkeypatch):
        import json

        monkeypatch.chdir(tmp_path)
        assert main(["profile", "crawl", "--quick", "-o", "crawl.ss.json"]) == 0
        captured = capsys.readouterr()
        assert "workload crawl" in captured.out
        assert "speedscope" in captured.err
        doc = json.loads((tmp_path / "crawl.ss.json").read_text())
        assert doc["profiles"][0]["samples"]

    def test_profile_list(self, capsys):
        assert main(["profile", "--list"]) == 0
        assert "crawl" in capsys.readouterr().out

    def test_bench_profile_flag_attaches_breakdown(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "bench.json"
        assert main([
            "bench", "--quick", "--profile", "--workloads", "crawl",
            "-o", str(out_path),
        ]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["schema"] == "repro-bench/3"
        breakdown = doc["workloads"]["crawl"]["profile"]
        assert breakdown["attributed_share"] >= 0.90

    def test_bench_refuses_quick_vs_full_baseline(self, tmp_path, capsys):
        import json

        baseline = tmp_path / "baseline.json"
        assert main(["bench", "--workloads", "crawl", "--quick", "-o", str(baseline)]) == 0
        capsys.readouterr()
        doc = json.loads(baseline.read_text())
        doc["quick"] = False  # masquerade as a full run
        baseline.write_text(json.dumps(doc))
        assert main([
            "bench", "--workloads", "crawl", "--quick", "--baseline", str(baseline),
        ]) == 2
        err = capsys.readouterr().err
        assert "refusing baseline compare" in err

    def test_sweep_live_requires_hosts(self, capsys):
        assert main(["sweep", "fig2", "--live"]) == 2
        assert "--live" in capsys.readouterr().err


class TestTraceCommand:
    @pytest.fixture()
    def trace_file(self, tmp_path, capsys):
        path = str(tmp_path / "run.trace.jsonl")
        assert main([
            "crawl", "--hours", "1", "--sensors", "4", "--seed", "3",
            "--trace", path,
        ]) == 0
        capsys.readouterr()
        return path

    def test_summary(self, trace_file, capsys):
        assert main(["trace", "summary", trace_file]) == 0
        out = capsys.readouterr().out
        assert "events" in out
        assert "net" in out

    def test_events_tail_and_category_filter(self, trace_file, capsys):
        assert main(["trace", "events", trace_file, "--cat", "crawler", "--tail", "5"]) == 0
        lines = [line for line in capsys.readouterr().out.splitlines() if line]
        assert 0 < len(lines) <= 5
        assert all("crawler" in line for line in lines)

    def test_convert_emits_chrome_trace(self, trace_file, capsys, tmp_path):
        import json

        out_path = str(tmp_path / "run.chrome.json")
        assert main(["trace", "convert", trace_file, "-o", out_path]) == 0
        doc = json.load(open(out_path))
        assert "traceEvents" in doc
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert "M" in phases and "i" in phases

    def test_missing_file_is_an_error(self, capsys, tmp_path):
        assert main(["trace", "summary", str(tmp_path / "nope.jsonl")]) == 2
        assert capsys.readouterr().err

    def test_gzip_trace_read_transparently(self, tmp_path, capsys):
        path = str(tmp_path / "run.trace.jsonl.gz")
        assert main([
            "crawl", "--hours", "1", "--sensors", "4", "--seed", "3",
            "--trace", path,
        ]) == 0
        capsys.readouterr()
        assert main(["trace", "summary", path]) == 0
        assert "events" in capsys.readouterr().out


class TestAnalyzeAndReport:
    @pytest.fixture()
    def trace_file(self, tmp_path, capsys):
        path = str(tmp_path / "run.trace.jsonl")
        assert main([
            "crawl", "--hours", "1", "--sensors", "4", "--seed", "3",
            "--trace", path,
        ]) == 0
        capsys.readouterr()
        return path

    def test_analyze_renders_health(self, trace_file, capsys):
        assert main(["trace", "analyze", trace_file]) == 0
        out = capsys.readouterr().out
        assert "distinct IPs" in out
        assert "budget burn" in out
        assert "network:" in out

    def test_analyze_json_schema(self, trace_file, capsys):
        import json

        assert main(["trace", "analyze", trace_file, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-health/1"
        assert doc["events"]["total"] > 0

    def test_report_embeds_analyze_json_byte_for_byte(self, trace_file, capsys, tmp_path):
        from repro.obs.analyze import extract_embedded_json

        assert main(["trace", "analyze", trace_file, "--json"]) == 0
        analyze_json = capsys.readouterr().out.rstrip("\n")
        out_path = str(tmp_path / "report.html")
        assert main(["report", trace_file, "-o", out_path]) == 0
        capsys.readouterr()
        with open(out_path, encoding="utf-8") as stream:
            html = stream.read()
        assert extract_embedded_json(html) == analyze_json

    def test_report_default_output_name(self, trace_file, capsys):
        import os

        assert main(["report", trace_file]) == 0
        out = capsys.readouterr().out
        expected = trace_file[: -len(".jsonl")] + ".report.html"
        assert expected in out
        assert os.path.exists(expected)

    def test_diff_identical_and_divergent(self, tmp_path, capsys):
        paths = {}
        for name, seed in (("a", "3"), ("b", "3"), ("c", "5")):
            path = str(tmp_path / f"{name}.jsonl")
            assert main([
                "crawl", "--hours", "1", "--sensors", "4", "--seed", seed,
                "--trace", path,
            ]) == 0
            capsys.readouterr()
            paths[name] = path
        assert main(["trace", "diff", paths["a"], paths["b"]]) == 0
        assert "identical" in capsys.readouterr().out
        assert main(["trace", "diff", paths["a"], paths["c"]]) == 1
        out = capsys.readouterr().out
        assert "first divergence" in out
        assert "indicator deltas" in out

    def test_diff_requires_two_files(self, capsys, tmp_path):
        path = str(tmp_path / "only.jsonl")
        open(path, "w").close()
        assert main(["trace", "diff", path]) == 2
        assert capsys.readouterr().err


class TestBenchCommand:
    def test_list_workloads(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "crawl" in out and "detect" in out and "sweep" in out

    def test_bad_threshold_rejected(self, capsys):
        assert main(["bench", "--threshold", "-1"]) == 2
        assert capsys.readouterr().err

    def test_unknown_workload_rejected(self, capsys):
        assert main(["bench", "--workloads", "meteor"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_quick_bench_writes_doc_and_compares(self, tmp_path, capsys, monkeypatch):
        import json

        from repro.bench import WORKLOADS

        def fake(quick):
            return {"events": 10}

        monkeypatch.setitem(WORKLOADS, "stub", fake)
        out_path = str(tmp_path / "BENCH_recon.json")
        assert main([
            "bench", "--quick", "--workloads", "stub", "-o", out_path,
        ]) == 0
        capsys.readouterr()
        doc = json.load(open(out_path))
        assert doc["schema"] == "repro-bench/3"
        assert "stub" in doc["workloads"]
        # Same doc as baseline: no regression possible, exit 0.
        assert main([
            "bench", "--quick", "--workloads", "stub",
            "-o", str(tmp_path / "second.json"), "--baseline", out_path,
            "--threshold", "1000",
        ]) == 0

    def test_regression_exits_nonzero(self, tmp_path, capsys, monkeypatch):
        import json

        from repro.bench import WORKLOADS

        import time

        def slow_stub(quick):
            time.sleep(0.02)
            return {"events": 10}

        monkeypatch.setitem(WORKLOADS, "stub", slow_stub)
        baseline = {
            "schema": "repro-bench/1",
            "quick": True,  # older minors stay comparable when flags match
            "workloads": {
                "stub": {"wall_s": 0.001, "events": 10,
                         "events_per_s": 1.0, "peak_rss_kb": 1},
            },
        }
        base_path = str(tmp_path / "baseline.json")
        with open(base_path, "w") as stream:
            json.dump(baseline, stream)
        assert main([
            "bench", "--quick", "--workloads", "stub",
            "-o", str(tmp_path / "out.json"), "--baseline", base_path,
        ]) == 1
        assert "REGRESSION" in capsys.readouterr().out


class TestSweepHealthFlag:
    def test_sweep_health_prints_indicators(self, capsys):
        assert main([
            "sweep", "fig3-zeus", "--scale", "tiny", "--workers", "1", "--health",
        ]) == 0
        out = capsys.readouterr().out
        assert "sweep health" in out
        assert "points captured metrics" in out
