"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_table_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table", "5"])
        assert args.number == 5
        with pytest.raises(SystemExit):
            parser.parse_args(["table", "2"])  # heavy exhibits are benches

    def test_crawl_defaults(self):
        args = build_parser().parse_args(["crawl"])
        assert args.scale == "tiny"
        assert args.contact_ratio == 1
        assert not args.hard_hitter

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestTableCommand:
    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        out = capsys.readouterr().out
        assert "Anti-recon measures" in out

    def test_table5(self, capsys):
        assert main(["table", "5"]) == 0
        assert "ZeroAccess" in capsys.readouterr().out

    def test_table6(self, capsys):
        assert main(["table", "6"]) == 0
        assert "Sensor injection" in capsys.readouterr().out


class TestCrawlCommand:
    def test_crawl_runs(self, capsys):
        assert main(["crawl", "--hours", "2", "--sensors", "4", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "distinct IPs" in out
        assert "edges collected" in out

    def test_detect_runs(self, capsys):
        assert main(
            ["detect", "--hours", "3", "--sensors", "16", "--seed", "3", "--hard-hitter"]
        ) == 0
        out = capsys.readouterr().out
        assert "coverage-based detection" in out
        assert "DETECTED" in out
