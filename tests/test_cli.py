"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_table_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table", "5"])
        assert args.number == 5
        with pytest.raises(SystemExit):
            parser.parse_args(["table", "2"])  # heavy exhibits are benches

    def test_crawl_defaults(self):
        args = build_parser().parse_args(["crawl"])
        assert args.scale == "tiny"
        assert args.contact_ratio == 1
        assert not args.hard_hitter

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestTableCommand:
    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        out = capsys.readouterr().out
        assert "Anti-recon measures" in out

    def test_table5(self, capsys):
        assert main(["table", "5"]) == 0
        assert "ZeroAccess" in capsys.readouterr().out

    def test_table6(self, capsys):
        assert main(["table", "6"]) == 0
        assert "Sensor injection" in capsys.readouterr().out


class TestChaosCommand:
    def test_list_kinds(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        assert "burst-loss" in out
        assert "leader-crash" in out

    def test_unknown_kind_rejected(self, capsys):
        assert main(["chaos", "--kinds", "meteor-strike"]) == 2
        assert "unknown kind" in capsys.readouterr().err

    def test_bad_intensity_rejected(self, capsys):
        assert main(["chaos", "--kinds", "baseline", "--intensities", "1.5"]) == 2
        assert "intensities" in capsys.readouterr().err

    def test_chaos_matrix_prints_degradation_report(self, capsys):
        assert main([
            "chaos", "--kinds", "baseline", "blackout",
            "--intensities", "0.2", "--hours", "2", "--sensors", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "coverage" in out
        assert "blackout" in out

    def test_chaos_json_output(self, capsys):
        import json

        assert main([
            "chaos", "--kinds", "burst-loss",
            "--intensities", "0.2", "--hours", "2", "--sensors", "8", "--json",
        ]) == 0
        cells = json.loads(capsys.readouterr().out)
        assert len(cells) == 1
        assert cells[0]["kind"] == "burst-loss"
        assert 0.0 <= cells[0]["coverage"] <= 1.0


class TestCrawlCommand:
    def test_crawl_runs(self, capsys):
        assert main(["crawl", "--hours", "2", "--sensors", "4", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "distinct IPs" in out
        assert "edges collected" in out

    def test_detect_runs(self, capsys):
        assert main(
            ["detect", "--hours", "3", "--sensors", "16", "--seed", "3", "--hard-hitter"]
        ) == 0
        out = capsys.readouterr().out
        assert "coverage-based detection" in out
        assert "DETECTED" in out
