"""Tests for coverage metrics, detection metrics, and renderers."""

import random

import pytest

from repro.analysis.coverage import (
    coverage_timeline,
    hourly_growth,
    relative_coverage,
    relative_coverage_series,
)
from repro.analysis.metrics import detection_series, detection_table, precision_recall
from repro.analysis.tables import (
    render_fig2,
    render_series_figure,
    render_table1,
    render_table2,
    render_table4,
    render_table5,
    render_table6,
)
from repro.core.anomaly.report import CrawlerFinding
from repro.core.crawler import CrawlReport
from repro.core.detection import DetectionConfig
from repro.core.detection.offline import EvaluationResult
from repro.net.address import parse_ip
from repro.net.transport import Endpoint
from repro.sim.clock import HOUR


def report_with(ips, times=None):
    report = CrawlReport()
    for index, ip in enumerate(ips):
        time = times[index] if times else float(index)
        report.note_discovery(time, bytes([index]) * 20, Endpoint(ip, 1000))
    return report


class TestCoverage:
    def test_relative_coverage(self):
        full = report_with([parse_ip("25.0.0.1") + i for i in range(10)])
        limited = report_with([parse_ip("25.0.0.1") + i for i in range(8)])
        assert relative_coverage(limited, full) == pytest.approx(0.8)

    def test_relative_coverage_empty_baseline(self):
        assert relative_coverage(CrawlReport(), CrawlReport()) == 0.0

    def test_relative_series(self):
        full = report_with([parse_ip("25.0.0.1") + i for i in range(10)])
        half = report_with([parse_ip("25.0.0.1") + i for i in range(5)])
        series = relative_coverage_series({"1/1": full, "1/2": half}, baseline="1/1")
        assert series == {"1/1": 1.0, "1/2": 0.5}

    def test_relative_series_missing_baseline(self):
        with pytest.raises(KeyError):
            relative_coverage_series({}, baseline="1/1")

    def test_timeline_and_growth(self):
        report = report_with(
            [parse_ip("25.0.0.1") + i for i in range(4)],
            times=[0.0, HOUR * 0.5, HOUR * 1.5, HOUR * 2.5],
        )
        series = coverage_timeline(report, until=3 * HOUR, bucket=HOUR)
        assert [count for _, count in series] == [1, 2, 3, 4]
        assert hourly_growth(series) == [1, 1, 1]


def fake_result(detected, missed, fps, threshold=0.05, ratio=1):
    return EvaluationResult(
        classified_keys=set(detected) | set(fps),
        detected_crawlers=set(detected),
        missed_crawlers=set(missed),
        false_positive_keys=set(fps),
        config=DetectionConfig(threshold=threshold),
        contact_ratio=ratio,
    )


class TestMetrics:
    def test_precision_recall(self):
        precision, recall = precision_recall({1, 2, 3}, {2, 3, 4})
        assert precision == pytest.approx(2 / 3)
        assert recall == pytest.approx(2 / 3)

    def test_precision_recall_empty(self):
        assert precision_recall(set(), set()) == (1.0, 1.0)
        assert precision_recall(set(), {1}) == (0.0, 0.0)

    def test_detection_table(self):
        grid = {
            (0.05, 1): fake_result({1, 2}, set(), set()),
            (0.05, 8): fake_result({1}, {2}, set(), ratio=8),
        }
        rows = detection_table(grid)
        assert rows[0]["t"] == 5.0
        assert rows[0]["D1/1"] == 100.0
        assert rows[0]["D1/8"] == 50.0
        assert rows[0]["fp"] == 0.0

    def test_detection_series(self):
        grid = {
            (0.05, 1): fake_result({1, 2}, set(), set()),
            (0.05, 8): fake_result({1}, {2}, set(), ratio=8),
            (0.01, 1): fake_result({1, 2}, set(), {9}, threshold=0.01),
        }
        series = detection_series(grid, 0.05)
        assert series == [(1, 100.0), (8, 50.0)]


class TestRenderers:
    def test_table1_contains_families_and_measures(self):
        text = render_table1()
        for family in ("Zeus", "Sality", "Storm"):
            assert family in text
        assert "Goodcount" in text
        assert "Auto + static" in text

    def test_table2_matrix(self):
        findings = [
            CrawlerFinding(ip=1, defects=("port_range", "hard_hitter"), message_count=50, coverage=0.69),
            CrawlerFinding(ip=2, defects=(), message_count=50, coverage=1.0),
        ]
        text = render_table2(findings, names=["c1", "c2"])
        assert "port_range" in text
        assert "69" in text and "100" in text

    def test_table4_with_coverage_rows(self):
        grid = {
            (0.05, 1): fake_result({1}, set(), set()),
            (0.05, 2): fake_result({1}, set(), set(), ratio=2),
        }
        text = render_table4(grid, coverage_rows={"C_Z": {2: 0.8}})
        assert "D1/1" in text and "D1/2" in text
        assert "C_Z" in text
        assert "80" in text

    def test_table5_susceptibility(self):
        text = render_table5()
        assert "ZeroAccess" in text
        lines = [l for l in text.splitlines() if l.startswith("Zeus")]
        assert "no" in lines[0]

    def test_table6_with_measured(self):
        text = render_table6(measured={"Crawling": {"NATed found": "0"}})
        assert "Sensor injection" in text
        assert "NATed found" in text

    def test_fig2(self):
        text = render_fig2({0.05: [(1, 100.0), (2, 89.0)]})
        assert "1/1" in text and "1/2" in text
        assert "89" in text

    def test_series_figure(self):
        text = render_series_figure(
            "Figure 3a", {"c=1/1": [(0.0, 0), (HOUR, 10)], "c=1/2": [(0.0, 0), (HOUR, 7)]}
        )
        assert "c=1/1" in text
        assert "10" in text and "7" in text
