"""Property-based tests (hypothesis) on core data structures and
protocol invariants."""

import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.botnets.graph import ConnectivityGraph
from repro.botnets.base import PeerEntry, PeerList
from repro.botnets.sality import protocol as sality_protocol
from repro.botnets.zeus import protocol as zeus_protocol
from repro.botnets.zeus.crypto import (
    KeystreamCache,
    visual_decode,
    visual_encode,
    zeus_decrypt,
    zeus_encrypt,
)
from repro.core.anomaly.entropy import printable_ratio, shannon_entropy
from repro.core.detection.aggregation import MemberReport, aggregate_group, required_reporters
from repro.core.detection.groups import group_of, sample_bit_positions
from repro.core.detection.voting import LeaderVote, retrieve_from_leaders, tally_votes
from repro.net.address import MAX_IP, format_ip, parse_ip, prefix_mask, subnet_key
from repro.net.transport import Endpoint
from repro.sim.scheduler import Scheduler

ips = st.integers(min_value=0, max_value=MAX_IP)
ports = st.integers(min_value=1, max_value=65535)
ids20 = st.binary(min_size=20, max_size=20)
ids4 = st.binary(min_size=4, max_size=4)


class TestAddressProperties:
    @given(ips)
    def test_parse_format_roundtrip(self, ip):
        assert parse_ip(format_ip(ip)) == ip

    @given(ips, st.integers(min_value=0, max_value=32))
    def test_subnet_key_idempotent(self, ip, prefix):
        key = subnet_key(ip, prefix)
        assert subnet_key(key, prefix) == key

    @given(ips, st.integers(min_value=0, max_value=32), st.integers(min_value=0, max_value=32))
    def test_subnet_key_nesting(self, ip, a, b):
        """A shorter prefix's key absorbs a longer prefix's key."""
        short, long_ = min(a, b), max(a, b)
        assert subnet_key(subnet_key(ip, long_), short) == subnet_key(ip, short)

    @given(ips, st.integers(min_value=0, max_value=32))
    def test_key_preserves_masked_bits(self, ip, prefix):
        assert subnet_key(ip, prefix) == ip & prefix_mask(prefix)


class TestCryptoProperties:
    @given(st.binary(max_size=512))
    def test_visual_roundtrip(self, data):
        assert visual_decode(visual_encode(data)) == data

    @given(ids20, st.binary(max_size=512))
    def test_zeus_encrypt_roundtrip(self, key, plaintext):
        assert zeus_decrypt(key, zeus_encrypt(key, plaintext)) == plaintext

    @given(ids20, st.binary(min_size=1, max_size=256))
    def test_keystream_xor_involution(self, key, data):
        cache = KeystreamCache()
        assert cache.xor(key, cache.xor(key, data)) == data

    @given(ids20, ids20, st.binary(min_size=8, max_size=256))
    def test_distinct_keys_distinct_ciphertexts(self, key_a, key_b, plaintext):
        assume(key_a != key_b)
        assert zeus_encrypt(key_a, plaintext) != zeus_encrypt(key_b, plaintext)


class TestZeusCodecProperties:
    @given(
        st.sampled_from(sorted(zeus_protocol.MessageType)),
        ids20,
        ids20,
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.binary(max_size=zeus_protocol.MAX_LOP - 1),
    )
    def test_encode_decode_roundtrip(self, msg_type, session, source, rnd, ttl, padding):
        payload = self._payload_for(msg_type)
        message = zeus_protocol.ZeusMessage(
            msg_type=int(msg_type),
            session_id=session,
            source_id=source,
            payload=payload,
            random_byte=rnd,
            ttl=ttl,
            padding=padding,
        )
        decoded = zeus_protocol.decode_message(zeus_protocol.encode_message(message))
        assert decoded == message

    @staticmethod
    def _payload_for(msg_type):
        if msg_type == zeus_protocol.MessageType.PEER_LIST_REQUEST:
            return b"\x05" * 20
        if msg_type in (
            zeus_protocol.MessageType.PEER_LIST_REPLY,
            zeus_protocol.MessageType.PROXY_REPLY,
        ):
            return zeus_protocol.encode_peer_entries([])
        if msg_type == zeus_protocol.MessageType.VERSION_REPLY:
            return zeus_protocol.encode_version_reply(1, 2)
        if msg_type == zeus_protocol.MessageType.DATA_REQUEST:
            return b"\x01"
        if msg_type == zeus_protocol.MessageType.DATA_REPLY:
            return zeus_protocol.encode_data_reply(1, b"x")
        return b""

    @given(st.lists(st.tuples(ids20, ips, ports), max_size=20))
    def test_peer_entries_roundtrip(self, raw):
        entries = [(bot_id, Endpoint(ip, port)) for bot_id, ip, port in raw]
        payload = zeus_protocol.encode_peer_entries(entries)
        assert zeus_protocol.decode_peer_entries(payload) == entries

    @given(ids20, ids20)
    def test_xor_distance_metric(self, a, b):
        assert zeus_protocol.xor_distance(a, b) == zeus_protocol.xor_distance(b, a)
        assert zeus_protocol.xor_distance(a, a) == 0
        if a != b:
            assert zeus_protocol.xor_distance(a, b) > 0


class TestSalityCodecProperties:
    @given(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=255),
        st.binary(max_size=sality_protocol.MAX_PADDING),
    )
    def test_packet_roundtrip(self, bot_id, nonce, minor, padding):
        message = sality_protocol.SalityMessage(
            command=int(sality_protocol.Command.PEER_REQUEST),
            bot_id=bot_id,
            nonce=nonce,
            payload=b"",
            minor_version=minor,
            padding=padding,
        )
        wire = sality_protocol.encode_packet(message)
        assert sality_protocol.decode_packet(wire) == message

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF), ips, ports)
    def test_peer_entry_roundtrip(self, bot_id, ip, port):
        payload = sality_protocol.encode_peer_entry(bot_id, Endpoint(ip, port))
        assert sality_protocol.decode_peer_entry(payload) == (bot_id, Endpoint(ip, port))


class TestGraphProperties:
    @given(
        st.lists(
            st.tuples(
                st.booleans(),
                st.integers(min_value=0, max_value=15),
                st.integers(min_value=0, max_value=15),
            ),
            max_size=60,
        )
    )
    def test_degree_sum_invariant(self, operations):
        """sum(out) == sum(in) == |E| under any add/remove sequence."""
        graph = ConnectivityGraph()
        for add, a, b in operations:
            if a == b:
                continue
            if add:
                graph.add_edge(f"n{a}", f"n{b}")
            else:
                graph.remove_edge(f"n{a}", f"n{b}")
        edges = graph.check_degree_sum()
        assert edges == graph.edge_count
        assert edges == sum(graph.out_degree(n) for n in graph.nodes)


class TestPeerListProperties:
    @given(
        st.integers(min_value=1, max_value=10),
        st.lists(st.tuples(ids4, ips, st.floats(min_value=0, max_value=1000)), max_size=60),
    )
    def test_capacity_never_exceeded(self, capacity, additions):
        peer_list = PeerList(capacity=capacity)
        for bot_id, ip, last_seen in additions:
            peer_list.add(PeerEntry(bot_id=bot_id, endpoint=Endpoint(ip, 1000), last_seen=last_seen))
        assert len(peer_list) <= capacity

    @given(st.lists(st.tuples(ids4, ips, st.floats(min_value=0, max_value=1000)), max_size=60))
    def test_subnet_filter_invariant(self, additions):
        """At most one entry per /20 with the Zeus filter."""
        peer_list = PeerList(capacity=100, ip_filter_prefix=20)
        for bot_id, ip, last_seen in additions:
            peer_list.add(PeerEntry(bot_id=bot_id, endpoint=Endpoint(ip, 1000), last_seen=last_seen))
        keys = [subnet_key(entry.endpoint.ip, 20) for entry in peer_list]
        assert len(keys) == len(set(keys))


class TestSchedulerProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1000), max_size=50))
    def test_dispatch_order_is_time_order(self, times):
        scheduler = Scheduler()
        fired = []
        for time in times:
            scheduler.call_at(time, lambda t=time: fired.append(t))
        scheduler.run()
        assert fired == sorted(fired)
        assert len(fired) == len(times)


class TestEntropyProperties:
    @given(st.binary(max_size=2048))
    def test_entropy_bounds(self, data):
        entropy = shannon_entropy(data)
        assert 0.0 <= entropy <= 8.0 + 1e-9

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=1, max_value=500))
    def test_constant_data_zero_entropy(self, byte, length):
        assert shannon_entropy(bytes([byte] * length)) == 0.0

    @given(st.binary(max_size=512))
    def test_printable_ratio_bounds(self, data):
        assert 0.0 <= printable_ratio(data) <= 1.0


class TestDetectionProperties:
    @given(st.integers(min_value=0, max_value=10_000), st.floats(min_value=0.001, max_value=1.0))
    def test_required_reporters_bounds(self, group_size, threshold):
        required = required_reporters(group_size, threshold)
        assert required >= 1
        if group_size:
            assert required <= group_size + 1

    @given(st.binary(min_size=20, max_size=20), st.integers(min_value=0, max_value=8))
    def test_group_of_in_range(self, bot_id, g):
        positions = sample_bit_positions(g, random.Random(0))
        assert 0 <= group_of(bot_id, positions) < 2 ** g

    @given(
        st.lists(st.frozensets(st.integers(min_value=0, max_value=30), max_size=6), max_size=10),
        st.floats(min_value=0.1, max_value=0.9),
    )
    def test_tally_votes_subset_of_union(self, key_sets, majority):
        votes = [LeaderVote(group_index=i, keys=keys) for i, keys in enumerate(key_sets)]
        result = tally_votes(votes, majority_fraction=majority)
        union = set().union(*key_sets) if key_sets else set()
        assert result <= union

    @given(
        st.lists(st.sets(st.integers(min_value=0, max_value=30), max_size=6), min_size=1, max_size=10),
        st.integers(min_value=1, max_value=10),
    )
    def test_retrieval_subset_of_union(self, leader_lists, sample_size):
        result = retrieve_from_leaders(leader_lists, sample_size, random.Random(0))
        assert result <= set().union(*leader_lists)

    @given(
        st.lists(
            st.lists(st.tuples(st.floats(min_value=0, max_value=100), ips), max_size=8),
            min_size=1,
            max_size=20,
        ),
        st.floats(min_value=0.05, max_value=1.0),
    )
    def test_aggregation_flags_subset_of_reported(self, member_requests, threshold):
        reports = [
            MemberReport(node_id=f"m{i}", requests=tuple(reqs))
            for i, reqs in enumerate(member_requests)
        ]
        verdict = aggregate_group(0, reports, threshold, since=0.0, until=200.0)
        reported = {ip for reqs in member_requests for _, ip in reqs}
        assert verdict.suspicious <= reported
        # Flagged keys meet the reporter threshold by construction.
        for key in verdict.suspicious:
            assert verdict.reporter_counts[key] >= verdict.threshold_count
