"""The observability hard invariant: tracing never perturbs a run.

Exhibits rendered with tracing and metrics fully enabled must be
byte-identical to the committed goldens (which were generated with
observability off).  If instrumentation ever draws randomness,
schedules an event, or reorders dispatch, these comparisons break.
"""

import pathlib
import random

import pytest

from repro.obs import runtime
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

GOLDEN_DIR = pathlib.Path(__file__).parent.parent / "golden" / "goldens"


def _golden_text(name: str) -> str:
    path = GOLDEN_DIR / name
    if not path.exists():
        pytest.skip(f"golden {name} not generated yet")
    return path.read_text()


class TestGoldenExhibitsUnderTracing:
    def test_fig3_zeus_traced_matches_untraced_golden(self):
        from repro.runner import build_sweep, render_result, run_sweep

        spec = build_sweep(
            "fig3-zeus",
            root_seed=0,
            scale="tiny",
            sensors=4,
            announce_hours=1.0,
            hours=3.0,
            ratios=(1, 2, 4),
        )
        tracer = Tracer()
        with runtime.activated(tracer=tracer, metrics=MetricsRegistry()):
            result = run_sweep(spec, workers=1)
        assert render_result(result) + "\n" == _golden_text("fig3_zeus_small_sweep.txt")

    def test_fig2_traced_matches_untraced_golden(self):
        import json

        from repro.runner import build_sweep, run_sweep
        from repro.runner.points import clear_capture_cache

        spec = build_sweep(
            "fig2",
            root_seed=0,
            scale="tiny",
            sensors=16,
            announce_hours=1.0,
            measure_hours=4.0,
            thresholds=(0.05, 0.10),
            ratios=(1, 2, 4),
            fleet_size=6,
        )
        # Force the shared capture to rebuild *under* instrumentation —
        # a cached capture from an earlier test would record no network
        # metrics and weaken the comparison.
        clear_capture_cache()
        with runtime.activated(tracer=Tracer(), metrics=MetricsRegistry()):
            # Metrics capture on top of ambient tracing: the snapshots
            # land in the records, the values must not move.
            result = run_sweep(spec, workers=1, capture_metrics=True)
        text = json.dumps(result.values(), indent=2, sort_keys=True)
        assert text + "\n" == _golden_text("fig2_small_values.json")
        # And the capture actually happened.
        assert all(record.metrics is not None for record in result.records)
        merged = result.merged_metrics()
        assert merged["net.sent"]["values"][""] > 0


class TestUnitLevelDeterminism:
    def _run_round(self):
        from repro.core.detection.coordinator import (
            DetectionConfig,
            ParticipantReport,
            run_round,
        )

        participants = [
            ParticipantReport(
                node_id=f"bot-{i}",
                requests=[(float(j), 0x7F000001 + (j % 3)) for j in range(6)],
                bot_id=bytes([i]) * 20,
            )
            for i in range(12)
        ]
        return run_round(
            participants, DetectionConfig(group_bits=2), random.Random(42), round_end=100.0
        )

    def test_detection_round_identical_with_tracing(self):
        baseline = self._run_round()
        with runtime.activated(tracer=Tracer(), metrics=MetricsRegistry()):
            traced = self._run_round()
        assert traced.classified == baseline.classified
        assert traced.bit_positions == baseline.bit_positions
        assert traced.leaders == baseline.leaders
        assert traced.confidence == baseline.confidence

    def _run_transport(self):
        from repro.net.transport import Endpoint, Transport, TransportConfig
        from repro.sim.scheduler import Scheduler

        sched = Scheduler()
        transport = Transport(
            sched,
            random.Random(7),
            config=TransportConfig(loss_rate=0.2, duplicate_rate=0.1, reorder_rate=0.1),
        )
        a, b = Endpoint(1, 1000), Endpoint(2, 1000)
        deliveries = []
        transport.bind(a, lambda m: None)
        transport.bind(b, lambda m: deliveries.append(m.delivered_at))
        for i in range(200):
            sched.call_later(float(i), transport.send, a, b, b"ping")
        sched.run()
        return deliveries, transport.stats

    def test_transport_identical_with_tracing(self):
        base_deliveries, base_stats = self._run_transport()
        with runtime.activated(tracer=Tracer(), metrics=MetricsRegistry()):
            traced_deliveries, traced_stats = self._run_transport()
        assert traced_deliveries == base_deliveries
        assert traced_stats == base_stats
