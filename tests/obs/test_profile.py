"""Unit tests for the subsystem wall-time profiler and its exporters."""

import json

import pytest

from repro.obs.profile import (
    NULL_PROFILER,
    SubsystemProfiler,
    collapsed_stacks,
    profile_breakdown,
    render_profile,
    speedscope_document,
    write_collapsed,
    write_speedscope,
)
from repro.obs.profile.profiler import (
    KIND_CALL,
    UNATTRIBUTED,
    classify_module,
)


class _Component:
    """Stand-in for an instrumented component with a bound-method
    callback, defined under a module we control via __module__."""

    def callback(self):
        pass


_Component.callback.__module__ = "repro.net.transport"


class TestClassifyModule:
    def test_longest_prefix_wins(self):
        assert classify_module("repro.net.churn.model") == "churn"
        assert classify_module("repro.net.transport") == "net"
        assert classify_module("repro.core.crawler.zeus") == "crawler"
        assert classify_module("repro.core.anomaly") == "core"

    def test_unknown_modules_fall_back_to_other(self):
        assert classify_module("json.decoder") == "other"
        assert classify_module(None) == "other"

    def test_prefix_must_be_a_package_boundary(self):
        # repro.networking is not repro.net.*
        assert classify_module("repro.networking") == "other"


class TestNullProfiler:
    def test_falsy_and_inert(self):
        assert not NULL_PROFILER
        NULL_PROFILER.record(lambda: None, 1.0)
        NULL_PROFILER.note("kind")
        with NULL_PROFILER.section("sub", "site"):
            pass


class TestRecording:
    def test_bound_methods_intern_to_one_site(self):
        profiler = SubsystemProfiler()
        component = _Component()
        # Each attribute access creates a fresh bound method; the
        # profiler must key on __func__ so they all land in one cell.
        profiler.record(component.callback, 0.001)
        profiler.record(component.callback, 0.002)
        structure = profiler.structure()
        assert structure == {"net": {"_Component.callback": {KIND_CALL: 2}}}

    def test_note_labels_exactly_one_dispatch(self):
        profiler = SubsystemProfiler()
        component = _Component()
        profiler.note("deliver.fast")
        profiler.record(component.callback, 0.001)
        profiler.record(component.callback, 0.001)
        kinds = profiler.structure()["net"]["_Component.callback"]
        assert kinds == {"deliver.fast": 1, KIND_CALL: 1}

    def test_section_self_time_excludes_inner_callbacks(self):
        profiler = SubsystemProfiler()
        component = _Component()
        with profiler.section("build", "scenario"):
            # Callback time recorded inside the section must not be
            # double counted as section self time.
            profiler.record(component.callback, 10.0)
        tree = profiler.tree()
        section_wall = tree["subsystems"]["build"]["sites"]["scenario"]["wall_s"]
        assert section_wall < 1.0  # self time only, not the 10s callback
        assert tree["subsystems"]["net"]["wall_s"] == pytest.approx(10.0)

    def test_tree_shares_sum_to_one_over_window(self):
        import time

        profiler = SubsystemProfiler()
        profiler.start()
        time.sleep(0.02)  # real window, partly unattributed
        profiler.record(_Component().callback, 0.005)
        profiler.stop()
        tree = profiler.tree()
        assert UNATTRIBUTED in tree["subsystems"]
        total_share = sum(s["share"] for s in tree["subsystems"].values())
        assert total_share == pytest.approx(1.0, abs=0.01)


class TestDeterminism:
    def _profiled_run(self):
        """A tiny seeded transport run under an ambient profiler."""
        import random

        from repro.net.transport import Endpoint, Transport, TransportConfig
        from repro.obs import runtime
        from repro.sim.scheduler import Scheduler

        profiler = SubsystemProfiler()
        with runtime.activated(profiler=profiler):
            sched = Scheduler()
            transport = Transport(
                sched,
                random.Random(7),
                config=TransportConfig(loss_rate=0.2, duplicate_rate=0.1),
            )
            a, b = Endpoint(1, 1000), Endpoint(2, 1000)
            transport.bind(a, lambda m: None)
            transport.bind(b, lambda m: None)
            for i in range(300):
                sched.call_later(float(i), transport.send, a, b, b"ping")
            sched.run()
        return profiler

    def test_identical_seeded_runs_identical_structure(self):
        # The determinism contract: structure() is a pure function of
        # the dispatch sequence.  Timings differ run to run; counts
        # and site names may not.
        first = self._profiled_run().structure()
        second = self._profiled_run().structure()
        assert first == second
        assert first  # and the runs actually recorded something

    def test_profiled_crawl_structure_is_deterministic(self):
        """Two identical seeded crawl workloads produce identical
        profile site trees (the ISSUE's property, end to end)."""
        from repro.bench import run_workload

        trees = []
        for _ in range(2):
            collect = {}
            run_workload("crawl", quick=True, profile=True, collect=collect)
            trees.append(collect["profiler"].structure())
        assert trees[0] == trees[1]


@pytest.fixture
def small_tree():
    profiler = SubsystemProfiler()
    profiler.start()
    component = _Component()
    profiler.note("deliver.lean")
    profiler.record(component.callback, 0.002)
    profiler.record(component.callback, 0.001)
    with profiler.section("build", "scenario"):
        pass
    profiler.stop()
    return profiler.tree()


class TestExport:
    def test_collapsed_stacks_format(self, small_tree):
        lines = collapsed_stacks(small_tree).splitlines()
        assert any(line.startswith("net;_Component.callback;deliver.lean ") for line in lines)
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert int(weight) > 0
            assert len(stack.split(";")) == 3

    def test_speedscope_document_is_loadable_shape(self, small_tree):
        doc = speedscope_document(small_tree, name="test")
        assert doc["$schema"] == "https://www.speedscope.app/file-format-schema.json"
        profile = doc["profiles"][0]
        assert profile["type"] == "sampled"
        assert len(profile["samples"]) == len(profile["weights"])
        frames = doc["shared"]["frames"]
        for sample in profile["samples"]:
            assert len(sample) == 3
            for index in sample:
                assert 0 <= index < len(frames)
        assert profile["endValue"] == sum(profile["weights"])

    def test_write_speedscope_and_collapsed(self, small_tree, tmp_path):
        ss = tmp_path / "p.speedscope.json"
        write_speedscope(small_tree, str(ss))
        loaded = json.loads(ss.read_text())
        assert loaded["profiles"][0]["unit"] == "microseconds"
        folded = tmp_path / "p.collapsed"
        write_collapsed(small_tree, str(folded))
        assert folded.read_text().strip()

    def test_breakdown_and_render(self, small_tree):
        breakdown = profile_breakdown(small_tree)
        assert set(breakdown) == {
            "window_s", "attributed_s", "attributed_share", "subsystems"
        }
        assert "net" in breakdown["subsystems"]
        text = render_profile(small_tree, title="unit")
        assert "unit" in text and "net" in text
