"""Unit tests for the metrics registry and snapshot merging."""

import pytest

from repro.obs.metrics import (
    NULL_METRIC,
    NULL_METRICS,
    MetricsRegistry,
    NullRegistry,
    merge_snapshots,
)


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("x", "help")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_metrics_idempotent_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_labeled_children_are_cached(self):
        reg = MetricsRegistry()
        drops = reg.counter("drops")
        assert drops.labels("loss") is drops.labels("loss")
        assert drops.labels("loss") is not drops.labels("nat")

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12

    def test_histogram_buckets_and_extremes(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 2.0):
            h.observe(v)
        snap = reg.snapshot()["lat"]["values"][""]
        assert snap["count"] == 3
        assert snap["min"] == 0.05
        assert snap["max"] == 2.0
        assert snap["buckets"] == {"0.1": 1, "1.0": 1, "+Inf": 1}

    def test_snapshot_runs_collectors(self):
        reg = MetricsRegistry()
        reg.register_collector(lambda r: r.gauge("late").set(42))
        assert reg.snapshot()["late"]["values"][""] == 42

    def test_snapshot_is_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.counter("b", "bees").inc()
        reg.gauge("a")
        snap = reg.snapshot()
        assert list(snap) == ["a", "b"]
        assert snap["b"] == {"kind": "counter", "help": "bees", "values": {"": 1.0}}


class TestNullImplementations:
    def test_null_registry_is_falsy_and_free(self):
        assert not NULL_METRICS
        assert not NullRegistry()
        assert NULL_METRICS.counter("x") is NULL_METRIC
        assert NULL_METRICS.gauge("x") is NULL_METRIC
        assert NULL_METRICS.histogram("x") is NULL_METRIC
        assert NULL_METRICS.snapshot() == {}

    def test_null_metric_absorbs_everything(self):
        m = NULL_METRIC
        assert m.labels("a", "b") is m
        m.inc()
        m.dec()
        m.set(1)
        m.observe(2)
        assert m.value == 0.0

    def test_real_registry_is_truthy(self):
        assert MetricsRegistry()


class TestMergeSnapshots:
    def _snap(self, **counts):
        reg = MetricsRegistry()
        for name, value in counts.items():
            reg.counter(name).inc(value)
        return reg.snapshot()

    def test_counters_sum(self):
        merged = merge_snapshots([self._snap(x=1), self._snap(x=2)])
        assert merged["x"]["values"][""] == 3

    def test_gauges_take_max(self):
        snaps = []
        for v in (3, 7, 5):
            reg = MetricsRegistry()
            reg.gauge("peak").set(v)
            snaps.append(reg.snapshot())
        assert merge_snapshots(snaps)["peak"]["values"][""] == 7

    def test_histograms_merge(self):
        snaps = []
        for v in (0.05, 5.0):
            reg = MetricsRegistry()
            reg.histogram("h", buckets=(0.1, 1.0)).observe(v)
            snaps.append(reg.snapshot())
        merged = merge_snapshots(snaps)["h"]["values"][""]
        assert merged["count"] == 2
        assert merged["min"] == 0.05
        assert merged["max"] == 5.0
        assert merged["buckets"] == {"0.1": 1, "1.0": 0, "+Inf": 1}

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.gauge("x").set(1)
        with pytest.raises(ValueError):
            merge_snapshots([self._snap(x=1), reg.snapshot()])

    def test_merge_does_not_mutate_inputs(self):
        first = self._snap(x=1)
        merge_snapshots([first, self._snap(x=2)])
        assert first["x"]["values"][""] == 1

    def test_empty_merge(self):
        assert merge_snapshots([]) == {}
