"""Instrumentation hooks: metrics agree with the layers' own stats."""

import random

from repro.obs import runtime
from repro.obs.instrument import TraceProgress
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


def _value(snapshot, name, label=""):
    return snapshot[name]["values"].get(label, 0.0)


class TestTransportMetrics:
    def _drive(self, registry):
        from repro.net.transport import Endpoint, Transport, TransportConfig
        from repro.sim.scheduler import Scheduler

        sched = Scheduler()
        with runtime.activated(metrics=registry):
            transport = Transport(
                sched, random.Random(3), config=TransportConfig(loss_rate=0.3)
            )
        a, b = Endpoint(1, 1000), Endpoint(2, 1000)
        transport.bind(a, lambda m: None)
        transport.bind(b, lambda m: None)
        for i in range(100):
            sched.call_later(float(i), transport.send, a, b, b"x")
        # One rejected send: unbound source.
        transport.send(Endpoint(9, 9), b, b"x")
        sched.run()
        return transport

    def test_counters_match_stats(self):
        registry = MetricsRegistry()
        transport = self._drive(registry)
        snap = registry.snapshot()
        assert _value(snap, "net.sent") == transport.stats.sent
        assert _value(snap, "net.delivered") == transport.stats.delivered
        assert _value(snap, "net.dropped", "loss") == transport.stats.dropped_loss
        assert _value(snap, "net.dropped", "unbound_src") == 1

    def test_trace_records_sends_and_drops(self):
        tracer = Tracer()
        with runtime.activated(tracer=tracer):
            transport = self._drive(MetricsRegistry())
        names = [e.name for e in tracer.events()]
        assert names.count("send") == transport.stats.sent
        assert names.count("deliver") == transport.stats.delivered
        drops = [e for e in tracer.events() if e.name == "drop"]
        assert sum(1 for e in drops if e.args["reason"] == "loss") == (
            transport.stats.dropped_loss
        )


class TestCrawlerMetrics:
    def test_counters_match_report(self):
        from repro.workloads.population import zeus_config
        from repro.workloads.scenarios import build_zeus_scenario
        from repro.core.crawler import ZeusCrawler
        from repro.core.stealth import StealthPolicy
        from repro.net.address import parse_ip
        from repro.net.transport import Endpoint
        from repro.sim.clock import HOUR

        registry = MetricsRegistry()
        with runtime.activated(metrics=registry):
            scenario = build_zeus_scenario(
                zeus_config("tiny", master_seed=5), sensor_count=2, announce_hours=0.5
            )
            crawler = ZeusCrawler(
                name="obs-test",
                endpoint=Endpoint(parse_ip("99.0.0.1"), 7000),
                transport=scenario.net.transport,
                scheduler=scenario.net.scheduler,
                rng=random.Random(5),
                policy=StealthPolicy(per_target_interval=15.0, requests_per_target=2),
            )
            crawler.start(scenario.net.bootstrap_sample(4, seed=5))
            scenario.run_for(1 * HOUR)
        snap = registry.snapshot()
        report = crawler.report
        assert _value(snap, "crawler.responses", "obs-test") == report.responses_received
        assert _value(snap, "crawler.requests_expired", "obs-test") == report.requests_expired
        assert _value(snap, "crawler.retries", "obs-test") == report.retries_sent
        assert _value(snap, "sensor.observations", "sensor-0") >= 0
        # The scenario's transport was built under the ambient registry
        # too, so network totals land in the same snapshot.
        assert _value(snap, "net.sent") == scenario.net.transport.stats.sent


class TestDetectionMetrics:
    def test_round_counters(self):
        from repro.core.detection.coordinator import (
            DetectionConfig,
            ParticipantReport,
            run_round,
        )

        participants = [
            ParticipantReport(
                node_id=f"bot-{i}",
                requests=[(float(j), 0x7F000001) for j in range(4)],
                bot_id=bytes([i]) * 20,
            )
            for i in range(8)
        ]
        registry = MetricsRegistry()
        tracer = Tracer()
        with runtime.activated(tracer=tracer, metrics=registry):
            result = run_round(
                participants,
                DetectionConfig(group_bits=1),
                random.Random(1),
                round_end=50.0,
                failed_groups=[0],
            )
        snap = registry.snapshot()
        assert _value(snap, "detect.rounds") == 1
        assert _value(snap, "detect.groups_lost") == len(result.failed_groups)
        assert _value(snap, "detect.votes", "honest") == len(result.verdicts)
        names = [e.name for e in tracer.events()]
        assert "round" in names
        assert names.count("group.aggregated") == len(result.verdicts)
        assert names.count("group.lost") == len(result.failed_groups)


class TestFaultMetrics:
    def test_node_faults_traced(self):
        from repro.faults.injector import NodeFaultDriver
        from repro.faults.plan import CRASH, FaultPlan, NodeFault
        from repro.sim.scheduler import Scheduler

        class _Node:
            def __init__(self):
                self.running = True

            def stop(self):
                self.running = False

            def start(self):
                self.running = True

        node = _Node()
        sched = Scheduler()
        registry = MetricsRegistry()
        tracer = Tracer()
        with runtime.activated(tracer=tracer, metrics=registry):
            driver = NodeFaultDriver(sched, lambda _nid: node)
        plan = FaultPlan(
            node_faults=(NodeFault(node_id="bot-1", kind=CRASH, at=10.0, duration=5.0),)
        )
        assert driver.install(plan) == 1
        sched.run()
        assert node.running  # crashed at 10, restarted at 15
        snap = registry.snapshot()
        assert _value(snap, "faults.injected", CRASH) == 1
        names = [e.name for e in tracer.events()]
        assert f"{CRASH}.down" in names
        assert f"{CRASH}.up" in names


class TestTraceProgress:
    def test_synthesizes_worker_timeline(self):
        from repro.runner.progress import ProgressEvent
        from repro.runner.sweep import PointRecord

        seen = []
        hook = TraceProgress(inner=seen.append)
        record = PointRecord(
            index=0, point="p", params={}, seed=1,
            values={}, wall_time=2.0, worker="pid:1", attempts=1,
        )
        hook(ProgressEvent("point-done", 1, 2, record=record, elapsed=5.0))
        hook(ProgressEvent("sweep-done", 2, 2, detail="done", elapsed=6.0))
        assert len(seen) == 2
        events = hook.events()
        span = next(e for e in events if e.ph == "X")
        assert span.cat == "pid:1"
        assert span.time == 3.0  # elapsed - wall_time
        assert span.dur == 2.0
        assert any(e.name == "sweep-done" for e in events)


class TestSweepMetricsCapture:
    def test_per_point_snapshots_merge(self):
        from repro.runner.registry import register_point
        from repro.runner.sweep import SweepPoint, SweepSpec
        from repro.runner.executors import run_sweep

        def _point(params, seed):
            runtime.metrics().counter("point.ticks").inc(params["n"])
            return {"n": params["n"]}

        register_point("obs-capture-test")(_point)
        spec = SweepSpec(
            name="obs-capture",
            root_seed=0,
            points=tuple(
                SweepPoint(index=i, point="obs-capture-test", params={"n": i + 1}, seed=i)
                for i in range(3)
            ),
        )
        result = run_sweep(spec, workers=1, capture_metrics=True)
        assert all(r.metrics is not None for r in result.records)
        merged = result.merged_metrics()
        assert merged["point.ticks"]["values"][""] == 1 + 2 + 3

    def test_capture_off_leaves_records_clean(self):
        from repro.runner.registry import register_point
        from repro.runner.sweep import SweepPoint, SweepSpec
        from repro.runner.executors import run_sweep

        register_point("obs-nocapture-test")(lambda params, seed: {"ok": 1})
        spec = SweepSpec(
            name="obs-nocapture",
            root_seed=0,
            points=(
                SweepPoint(index=0, point="obs-nocapture-test", params={}, seed=0),
            ),
        )
        result = run_sweep(spec, workers=1)
        assert result.records[0].metrics is None
        assert result.merged_metrics() == {}
