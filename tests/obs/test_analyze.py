"""Unit tests for the health analyzer and the HTML report export."""

import json

from repro.obs.analyze import (
    HEALTH_SCHEMA,
    HealthAnalyzer,
    analyze_events,
    analyze_file,
    extract_embedded_json,
    histogram_quantile,
    latency_summary,
    percentile,
    render_health,
    render_html,
    snapshot_indicators,
    write_html_report,
)
from repro.obs.analyze.health import MAX_CURVE_POINTS, _decimate
from repro.obs.events import COMPLETE, TraceEvent
from repro.obs.export import write_jsonl
from repro.obs.metrics import MetricsRegistry

import pytest


def _crawl_events(name="c1", ips=4, requests=6):
    """A tiny synthetic crawl recording with a known shape."""
    events = []
    for i in range(ips):
        events.append(
            TraceEvent(
                float(i + 1), "crawler", "ip.discovered",
                args={"crawler": name, "total": i + 1},
            )
        )
    for i in range(requests):
        t = 10.0 + i
        events.append(
            TraceEvent(
                t, "crawler", "request.issued",
                args={"crawler": name, "target": f"10.0.0.{i}"},
            )
        )
        if i % 2 == 0:
            events.append(
                TraceEvent(
                    t + 0.2, "crawler", "request.replied",
                    args={"crawler": name, "rtt": 0.2},
                )
            )
        else:
            events.append(
                TraceEvent(t + 5.0, "crawler", "request.expired", args={"crawler": name})
            )
    return events


class TestNumericHelpers:
    def test_percentile_nearest_rank(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 1.0) == 4.0
        assert percentile(data, 0.5) in (2.0, 3.0)

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_latency_summary_empty_is_none(self):
        assert latency_summary([]) is None

    def test_latency_summary_fields(self):
        summary = latency_summary([0.1, 0.2, 0.3])
        assert summary["count"] == 3
        assert summary["max"] == 0.3
        assert abs(summary["mean"] - 0.2) < 1e-9
        assert set(summary) == {"count", "mean", "p50", "p90", "p99", "max"}

    def test_histogram_quantile_interpolates(self):
        buckets = {"1": 10, "2": 10, "+Inf": 0}
        assert histogram_quantile(buckets, 0.5) == 1.0
        assert histogram_quantile(buckets, 0.75) == 1.5

    def test_histogram_quantile_empty_is_none(self):
        assert histogram_quantile({"+Inf": 0}, 0.5) is None

    def test_histogram_quantile_all_in_inf_uses_last_bound(self):
        assert histogram_quantile({"1": 0, "+Inf": 5}, 0.5) == 1.0

    def test_decimate_keeps_endpoints(self):
        curve = [[float(i), float(i)] for i in range(1000)]
        out = _decimate(curve)
        assert len(out) <= MAX_CURVE_POINTS
        assert out[0] == curve[0]
        assert out[-1] == curve[-1]
        assert _decimate(curve) == _decimate(curve)  # deterministic

    def test_decimate_short_curve_untouched(self):
        curve = [[0.0, 1.0], [1.0, 2.0]]
        assert _decimate(curve) == curve


class TestSnapshotIndicators:
    def test_counters_gauges_and_histograms_flatten(self):
        reg = MetricsRegistry()
        reg.counter("net.sent").inc(5)
        reg.counter("net.dropped").labels("loss").inc(2)
        reg.gauge("sched.peak_heap").set(7)
        hist = reg.histogram("net.latency", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        flat = snapshot_indicators(reg.snapshot())
        assert flat["net.sent"] == 5
        assert flat["net.dropped.loss"] == 2
        assert flat["sched.peak_heap"] == 7
        assert flat["net.latency.count"] == 2
        assert "net.latency.p50" in flat
        assert "net.latency.p99" in flat

    def test_empty_snapshot(self):
        assert snapshot_indicators({}) == {}


class TestHealthAnalyzer:
    def test_empty_report(self):
        report = analyze_events([])
        assert report.data["schema"] == HEALTH_SCHEMA
        assert report.data["span"]["start"] is None
        assert report.data["events"]["total"] == 0
        assert report.data["detection"] is None
        assert "no events" in render_health(report)

    def test_crawler_coverage_and_burn(self):
        report = analyze_events(_crawl_events(ips=4, requests=6))
        crawler = report.data["crawlers"]["c1"]
        assert crawler["distinct_ips"] == 4
        assert crawler["requests_issued"] == 6
        assert crawler["requests_replied"] == 3
        assert crawler["requests_expired"] == 3
        assert crawler["reply_rate"] == 0.5
        assert crawler["coverage_curve"][-1] == [4.0, 4.0]
        assert crawler["budget_burn"][-1][1] == 6.0
        assert crawler["rtt"]["count"] == 3

    def test_milestones_are_time_to_fraction_of_final(self):
        report = analyze_events(_crawl_events(ips=4, requests=0))
        milestones = report.data["crawlers"]["c1"]["milestones"]
        # final = 4 IPs at t=1..4: 25% -> first curve point, 99% -> last.
        assert milestones["25%"] == 1.0
        assert milestones["50%"] == 2.0
        assert milestones["99%"] == 4.0

    def test_detection_round_votes_and_margin(self):
        events = [
            TraceEvent(10.0, "detect", "leader.vote", args={"behavior": "crawler"}),
            TraceEvent(10.0, "detect", "leader.vote", args={"behavior": "crawler"}),
            TraceEvent(10.0, "detect", "leader.vote", args={"behavior": "crawler"}),
            TraceEvent(10.0, "detect", "leader.vote", args={"behavior": "bot"}),
            TraceEvent(
                8.0, "detect", "round", COMPLETE, 4.0,
                {"groups": 4, "votes": 4, "classified": 2,
                 "confidence": 0.9, "quorum_met": True},
            ),
        ]
        report = analyze_events(events)
        detection = report.data["detection"]
        assert detection["round_count"] == 1
        entry = detection["rounds"][0]
        assert entry["vote_margin"] == 0.5  # (3 - 1) / 4
        assert entry["behaviors"] == {"bot": 1, "crawler": 3}
        assert entry["end"] == 12.0
        assert detection["detection_latency"] == 12.0
        assert detection["mean_confidence"] == 0.9

    def test_votes_reset_between_rounds(self):
        events = [
            TraceEvent(1.0, "detect", "leader.vote", args={"behavior": "crawler"}),
            TraceEvent(0.5, "detect", "round", COMPLETE, 1.0, {"classified": 0}),
            TraceEvent(2.0, "detect", "round", COMPLETE, 1.0, {"classified": 0}),
        ]
        detection = analyze_events(events).data["detection"]
        assert detection["rounds"][0]["behaviors"] == {"crawler": 1}
        assert detection["rounds"][1]["behaviors"] == {}
        assert detection["rounds"][1]["vote_margin"] is None
        assert detection["detection_latency"] is None

    def test_quorum_degradation_counted(self):
        events = [
            TraceEvent(1.0, "detect", "round.quorum_degraded", args={}),
            TraceEvent(0.0, "detect", "round", COMPLETE, 2.0, {"quorum_met": False}),
        ]
        detection = analyze_events(events).data["detection"]
        assert detection["quorum_degraded_rounds"] == 1

    def test_drop_and_fault_breakdowns(self):
        events = [
            TraceEvent(1.0, "net", "send", args={}),
            TraceEvent(1.1, "net", "deliver", args={"latency": 0.1}),
            TraceEvent(2.0, "net", "drop", args={"reason": "loss"}),
            TraceEvent(3.0, "net", "drop", args={"reason": "loss"}),
            TraceEvent(4.0, "net", "drop", args={"reason": "unroutable"}),
            TraceEvent(5.0, "faults", "partition.heal", args={}),
        ]
        report = analyze_events(events)
        net = report.data["net"]
        assert net["drops"] == {"loss": 2, "unroutable": 1}
        assert net["drop_total"] == 3
        assert net["send"] == 1 and net["deliver"] == 1
        assert net["deliver_latency"]["count"] == 1
        assert report.data["faults"] == {"by_kind": {"partition.heal": 1}, "total": 1}

    def test_span_includes_complete_duration(self):
        events = [TraceEvent(1.0, "detect", "round", COMPLETE, 5.0, {})]
        span = analyze_events(events).data["span"]
        assert span["start"] == 1.0
        assert span["end"] == 6.0
        assert span["duration"] == 5.0

    def test_feed_incrementally_matches_feed_all(self):
        events = _crawl_events()
        one = HealthAnalyzer()
        for event in events:
            one.feed(event)
        assert one.report().to_json() == analyze_events(events).to_json()

    def test_to_json_is_deterministic(self):
        events = _crawl_events()
        assert analyze_events(events).to_json() == analyze_events(events).to_json()

    def test_metrics_snapshot_joined_as_indicators(self):
        reg = MetricsRegistry()
        reg.counter("net.sent").inc(3)
        report = analyze_events([], metrics_snapshot=reg.snapshot())
        assert report.data["metrics_indicators"]["net.sent"] == 3

    def test_flatten_skips_curves(self):
        flat = analyze_events(_crawl_events()).flatten()
        assert "events.total" in flat
        assert all("coverage_curve" not in key for key in flat)

    def test_analyze_file_gzip_roundtrip(self, tmp_path):
        events = _crawl_events()
        path = str(tmp_path / "run.jsonl.gz")
        write_jsonl(events, path)
        assert analyze_file(path).to_json() == analyze_events(events).to_json()

    def test_analyze_file_joins_metrics(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        write_jsonl(_crawl_events(), path)
        metrics_path = str(tmp_path / "metrics.json")
        reg = MetricsRegistry()
        reg.counter("net.sent").inc(9)
        with open(metrics_path, "w") as stream:
            json.dump(reg.snapshot(), stream)
        report = analyze_file(path, metrics_path)
        assert report.data["metrics_indicators"]["net.sent"] == 9

    def test_render_health_mentions_key_sections(self):
        events = _crawl_events() + [
            TraceEvent(20.0, "net", "drop", args={"reason": "loss"}),
        ]
        text = render_health(analyze_events(events))
        assert "crawler c1:" in text
        assert "budget burn" in text
        assert "drop[loss]" in text


class TestHtmlReport:
    def test_embedded_json_is_byte_identical(self):
        report = analyze_events(_crawl_events())
        html = render_html(report)
        assert extract_embedded_json(html) == report.to_json()

    def test_html_is_self_contained(self):
        html = render_html(analyze_events(_crawl_events()), title="t")
        assert html.lower().startswith("<!doctype html>")
        lowered = html.lower()
        assert "http://" not in lowered and "https://" not in lowered
        assert "<script" in lowered and "<style" in lowered

    def test_title_is_escaped(self):
        html = render_html(analyze_events([]), title="<run & report>")
        assert "<run &" not in html
        assert "&lt;run &amp; report&gt;" in html

    def test_write_html_report(self, tmp_path):
        report = analyze_events(_crawl_events())
        path = str(tmp_path / "report.html")
        write_html_report(report, path)
        with open(path, encoding="utf-8") as stream:
            html = stream.read()
        assert extract_embedded_json(html) == report.to_json()

    def test_extract_missing_markers_is_none(self):
        assert extract_embedded_json("<html></html>") is None
