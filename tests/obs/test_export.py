"""Unit tests for trace/metrics export and the instrument layer."""

import json

from repro.obs.events import COMPLETE, FlightRecorder, TraceEvent
from repro.obs.export import (
    chrome_trace,
    metrics_json,
    read_jsonl,
    render_events,
    render_summary,
    write_chrome_trace,
    write_jsonl,
    write_metrics,
)
from repro.obs.instrument import (
    CallbackProfile,
    ObsSession,
    instrument_scheduler,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.sim.scheduler import Scheduler


def _sample_events():
    return [
        TraceEvent(0.5, "net", "send", args={"src": "a"}),
        TraceEvent(1.0, "detect", "round", COMPLETE, 2.0, {"groups": 4}),
        TraceEvent(3.5, "net", "drop", args={"reason": "loss"}),
    ]


class TestJsonl:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        assert write_jsonl(_sample_events(), path) == 3
        events = read_jsonl(path)
        assert [e.to_dict() for e in events] == [e.to_dict() for e in _sample_events()]

    def test_gzip_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl.gz")
        assert write_jsonl(_sample_events(), path) == 3
        events = read_jsonl(path)
        assert [e.to_dict() for e in events] == [e.to_dict() for e in _sample_events()]

    def test_gzip_file_is_actually_compressed(self, tmp_path):
        path = str(tmp_path / "trace.jsonl.gz")
        write_jsonl(_sample_events(), path)
        with open(path, "rb") as stream:
            magic = stream.read(2)
        assert magic == b"\x1f\x8b"

    def test_gzip_and_plain_carry_identical_lines(self, tmp_path):
        import gzip

        plain = str(tmp_path / "trace.jsonl")
        gz = str(tmp_path / "trace.jsonl.gz")
        write_jsonl(_sample_events(), plain)
        write_jsonl(_sample_events(), gz)
        with open(plain, "rb") as stream:
            plain_bytes = stream.read()
        with gzip.open(gz, "rb") as stream:
            gz_bytes = stream.read()
        assert plain_bytes == gz_bytes

    def test_lines_are_independent_json(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(_sample_events(), path)
        with open(path) as stream:
            lines = [line for line in stream if line.strip()]
        assert len(lines) == 3
        for line in lines:
            json.loads(line)


class TestChromeTrace:
    def test_structure_is_perfetto_loadable(self):
        trace = chrome_trace(_sample_events())
        assert "traceEvents" in trace
        events = trace["traceEvents"]
        # Two categories -> two thread_name metadata events.
        metas = [e for e in events if e["ph"] == "M"]
        assert {m["args"]["name"] for m in metas} == {"net", "detect"}
        real = [e for e in events if e["ph"] != "M"]
        assert len(real) == 3
        for entry in real:
            assert set(entry) >= {"name", "cat", "ph", "ts", "pid", "tid"}

    def test_seconds_become_microseconds(self):
        trace = chrome_trace(_sample_events())
        send = next(e for e in trace["traceEvents"] if e.get("name") == "send")
        assert send["ts"] == 0.5 * 1_000_000
        span = next(e for e in trace["traceEvents"] if e.get("name") == "round")
        assert span["dur"] == 2.0 * 1_000_000

    def test_categories_share_a_track(self):
        trace = chrome_trace(_sample_events())
        net = [e for e in trace["traceEvents"] if e.get("cat") == "net"]
        assert len({e["tid"] for e in net}) == 1

    def test_write_counts_real_events(self, tmp_path):
        path = str(tmp_path / "trace.chrome.json")
        assert write_chrome_trace(_sample_events(), path) == 3
        json.load(open(path))


class TestRenderers:
    def test_summary_counts(self):
        text = render_summary(_sample_events())
        assert "3 events" in text
        assert "net" in text and "detect" in text

    def test_summary_empty_is_friendly(self):
        text = render_summary([])
        assert "no events" in text
        assert "Traceback" not in text

    def test_summary_empty_accepts_any_iterable(self):
        assert "no events" in render_summary(iter(()))

    def test_summary_single_event(self):
        text = render_summary([TraceEvent(1.0, "net", "send")])
        assert "1 event" in text
        assert "1 events" not in text

    def test_render_events_lines(self):
        lines = render_events(_sample_events()).splitlines()
        assert len(lines) == 3
        assert "reason=loss" in lines[2]

    def test_metrics_json_stable(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc()
        text = metrics_json(reg.snapshot())
        assert text.index('"a"') < text.index('"b"')

    def test_write_metrics_to_path(self, tmp_path):
        path = str(tmp_path / "metrics.json")
        reg = MetricsRegistry()
        reg.counter("x").inc(2)
        write_metrics(reg.snapshot(), path)
        assert json.load(open(path))["x"]["values"][""] == 2


class TestInstrumentScheduler:
    def test_stats_surface_as_gauges(self):
        sched = Scheduler()
        registry = MetricsRegistry()
        instrument_scheduler(sched, registry, profile=False)
        sched.call_later(1.0, lambda: None)
        sched.run()
        snap = registry.snapshot()
        assert snap["sched.dispatched"]["values"][""] == 1
        assert snap["sched.peak_heap"]["values"][""] == 1

    def test_callback_profile_labels_by_qualname(self):
        registry = MetricsRegistry()
        profile = CallbackProfile(registry)

        def tick():
            pass

        profile.record(tick, 0.001)
        profile.record(tick, 0.002)
        snap = registry.snapshot()["sched.callback_wall_seconds"]["values"]
        (label,) = snap.keys()
        assert "tick" in label
        assert snap[label]["count"] == 2

    def test_scheduler_profile_records_dispatches(self):
        sched = Scheduler()
        registry = MetricsRegistry()
        instrument_scheduler(sched, registry)
        sched.call_later(1.0, lambda: None)
        sched.call_later(2.0, lambda: None)
        sched.run()
        values = registry.snapshot()["sched.callback_wall_seconds"]["values"]
        assert sum(v["count"] for v in values.values()) == 2


class TestObsSession:
    def test_writes_outputs_on_exit(self, tmp_path):
        trace_path = str(tmp_path / "t.jsonl")
        metrics_path = str(tmp_path / "m.json")
        session = ObsSession(trace_path=trace_path, metrics_path=metrics_path)
        with session:
            from repro.obs import runtime

            runtime.tracer().instant(1.0, "test", "ping")
            runtime.metrics().counter("test.count").inc()
        assert len(read_jsonl(trace_path)) == 1
        assert json.load(open(metrics_path))["test.count"]["values"][""] == 1
        assert len(session.written) == 2

    def test_writes_partial_trace_on_failure(self, tmp_path):
        trace_path = str(tmp_path / "t.jsonl")
        session = ObsSession(trace_path=trace_path)
        try:
            with session:
                from repro.obs import runtime

                runtime.tracer().instant(1.0, "test", "before-crash")
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        events = read_jsonl(trace_path)
        assert [e.name for e in events] == ["before-crash"]

    def test_flight_capacity_bounds_recording(self, tmp_path):
        trace_path = str(tmp_path / "t.jsonl")
        session = ObsSession(trace_path=trace_path, flight_capacity=5)
        with session:
            from repro.obs import runtime

            for i in range(50):
                runtime.tracer().instant(float(i), "test", "tick")
        events = read_jsonl(trace_path)
        assert len(events) == 5
        assert events[-1].time == 49.0

    def test_inactive_session_is_free(self):
        session = ObsSession()
        assert not session.active
        with session:
            from repro.obs import runtime
            from repro.obs.metrics import NULL_METRICS
            from repro.obs.tracer import NULL_TRACER

            assert runtime.tracer() is NULL_TRACER
            assert runtime.metrics() is NULL_METRICS
        assert session.written == []
