"""Unit tests for the tracer, flight recorder, and ambient runtime."""

import pytest

from repro.obs import runtime
from repro.obs.events import COMPLETE, COUNTER, INSTANT, FlightRecorder, TraceEvent
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer


class _FakeClock:
    def __init__(self):
        self.now = 0.0


class TestTracer:
    def test_instant_records_time_and_args(self):
        tracer = Tracer()
        tracer.instant(3.5, "net", "send", src="a", dst="b")
        (event,) = tracer.events()
        assert (event.time, event.cat, event.name, event.ph) == (3.5, "net", "send", INSTANT)
        assert event.args == {"src": "a", "dst": "b"}

    def test_instant_without_args_stores_none(self):
        tracer = Tracer()
        tracer.instant(1.0, "net", "send")
        assert tracer.events()[0].args is None

    def test_complete_span_duration(self):
        tracer = Tracer()
        tracer.complete(2.0, 5.0, "detect", "round")
        (event,) = tracer.events()
        assert event.ph == COMPLETE
        assert event.time == 2.0
        assert event.dur == 3.0

    def test_counter_sample(self):
        tracer = Tracer()
        tracer.counter(1.0, "sched", "heap", depth=7)
        (event,) = tracer.events()
        assert event.ph == COUNTER
        assert event.args == {"depth": 7}

    def test_span_context_manager_reads_clock(self):
        tracer = Tracer()
        clock = _FakeClock()
        with tracer.span("sim", "phase", clock, label="x"):
            clock.now = 4.0
        (event,) = tracer.events()
        assert (event.time, event.dur) == (0.0, 4.0)
        assert event.args == {"label": "x"}

    def test_truthy_and_len(self):
        tracer = Tracer()
        assert tracer
        tracer.instant(0.0, "a", "b")
        assert len(tracer) == 1


class TestNullTracer:
    def test_falsy(self):
        assert not NULL_TRACER
        assert not NullTracer()

    def test_all_methods_noop(self):
        null = NullTracer()
        null.instant(0.0, "a", "b", x=1)
        null.complete(0.0, 1.0, "a", "b")
        null.counter(0.0, "a", "b", v=1)
        null.emit(TraceEvent(0.0, "a", "b"))
        with null.span("a", "b", _FakeClock()):
            pass
        assert null.events() == []
        assert len(null) == 0


class TestFlightRecorder:
    def test_capacity_bounds_length(self):
        recorder = FlightRecorder(capacity=10)
        for i in range(100):
            recorder.append(TraceEvent(float(i), "c", "n"))
        assert len(recorder) == 10
        assert recorder.dropped == 90

    def test_keeps_most_recent(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(5):
            recorder.append(TraceEvent(float(i), "c", "n"))
        assert [e.time for e in recorder.events()] == [2.0, 3.0, 4.0]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_clear_resets(self):
        recorder = FlightRecorder(capacity=2)
        for i in range(4):
            recorder.append(TraceEvent(float(i), "c", "n"))
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.dropped == 0

    def test_as_tracer_buffer(self):
        tracer = Tracer(buffer=FlightRecorder(capacity=2))
        for i in range(5):
            tracer.instant(float(i), "c", "n")
        assert [e.time for e in tracer.events()] == [3.0, 4.0]


class TestRuntime:
    def test_defaults_are_null(self):
        assert runtime.tracer() is NULL_TRACER
        assert runtime.metrics() is NULL_METRICS

    def test_activated_scopes_and_restores(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        with runtime.activated(tracer=tracer, metrics=registry):
            assert runtime.tracer() is tracer
            assert runtime.metrics() is registry
        assert runtime.tracer() is NULL_TRACER
        assert runtime.metrics() is NULL_METRICS

    def test_nested_activation_composes(self):
        outer_tracer = Tracer()
        outer_metrics = MetricsRegistry()
        inner_metrics = MetricsRegistry()
        with runtime.activated(tracer=outer_tracer, metrics=outer_metrics):
            # A per-point registry leaves the outer tracer in place.
            with runtime.activated(metrics=inner_metrics):
                assert runtime.tracer() is outer_tracer
                assert runtime.metrics() is inner_metrics
            assert runtime.metrics() is outer_metrics

    def test_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with runtime.activated(tracer=Tracer()):
                raise RuntimeError("boom")
        assert runtime.tracer() is NULL_TRACER

    def test_activate_deactivate(self):
        tracer = Tracer()
        runtime.activate(tracer=tracer)
        try:
            assert runtime.tracer() is tracer
            # metrics slot untouched by a tracer-only activation
            assert runtime.metrics() is NULL_METRICS
        finally:
            runtime.deactivate()
        assert runtime.tracer() is NULL_TRACER


class TestEventSerialization:
    def test_roundtrip(self):
        event = TraceEvent(1.5, "net", "send", COMPLETE, 0.5, {"n": 1})
        again = TraceEvent.from_dict(event.to_dict())
        assert again.to_dict() == event.to_dict()

    def test_instant_dict_omits_dur(self):
        assert "dur" not in TraceEvent(1.0, "a", "b").to_dict()
