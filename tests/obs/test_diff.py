"""Unit tests for trace diffing."""

from repro.obs.analyze import diff_files, diff_recordings, render_diff
from repro.obs.events import TraceEvent
from repro.obs.export import write_jsonl


def _events(drop_reason="loss", count=5):
    events = []
    for i in range(count):
        events.append(
            TraceEvent(
                float(i), "net", "send",
                args={"src": "10.0.0.1:1", "dst": f"10.0.0.{i + 2}:1", "bytes": 64},
            )
        )
    events.append(TraceEvent(float(count), "net", "drop", args={"reason": drop_reason}))
    return events


class TestDiffRecordings:
    def test_identical(self):
        diff = diff_recordings(_events(), _events())
        assert diff.identical
        assert diff.first_divergence is None
        assert diff.indicator_deltas == {}
        assert diff.count_a == diff.count_b == 6
        assert "identical" in render_diff(diff)

    def test_arg_divergence_pinpointed(self):
        a = _events(drop_reason="loss")
        b = _events(drop_reason="unroutable")
        diff = diff_recordings(a, b)
        assert not diff.identical
        first = diff.first_divergence
        assert first["index"] == 5
        assert first["field"] == "args.reason"
        assert first["time"] == 5.0
        assert "net.drops.loss" in diff.indicator_deltas
        assert diff.indicator_deltas["net.drops.loss"]["a"] == 1.0
        assert diff.indicator_deltas["net.drops.loss"]["b"] is None

    def test_time_divergence(self):
        a = [TraceEvent(1.0, "net", "send", args={})]
        b = [TraceEvent(2.0, "net", "send", args={})]
        diff = diff_recordings(a, b)
        assert diff.first_divergence["field"] == "time"
        assert diff.first_divergence["index"] == 0

    def test_length_mismatch(self):
        a = _events()
        diff = diff_recordings(a, a[:-2])
        assert not diff.identical
        first = diff.first_divergence
        assert first["field"] == "length"
        assert first["index"] == 4
        assert first["event_b"] is None
        assert diff.count_a == 6 and diff.count_b == 4
        assert "<recording ended>" in render_diff(diff)

    def test_both_empty_is_identical(self):
        diff = diff_recordings([], [])
        assert diff.identical
        assert diff.count_a == diff.count_b == 0

    def test_to_dict_schema(self):
        doc = diff_recordings(_events(), _events("dup")).to_dict()
        assert doc["schema"] == "repro-trace-diff/1"
        assert doc["identical"] is False
        assert doc["events"] == {"a": 6, "b": 6}
        assert sorted(doc["indicator_deltas"]) == list(doc["indicator_deltas"])

    def test_render_orders_by_relative_change(self):
        diff = diff_recordings(_events(), _events("unroutable"))
        text = render_diff(diff, "runA", "runB")
        assert "runA: 6 events" in text
        assert "first divergence at event 5" in text
        assert "indicator deltas" in text


class TestDiffFiles:
    def test_streams_from_disk_including_gzip(self, tmp_path):
        path_a = str(tmp_path / "a.jsonl.gz")
        path_b = str(tmp_path / "b.jsonl")
        write_jsonl(_events(), path_a)
        write_jsonl(_events("unroutable"), path_b)
        diff = diff_files(path_a, path_b)
        assert diff.first_divergence["field"] == "args.reason"
