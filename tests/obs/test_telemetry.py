"""TelemetryEmitter mechanics and the telemetry hard invariant.

The emitter reads wall-clock state only; a run with telemetry (and the
profiler) fully enabled must stay byte-identical to the committed
goldens, exactly as tracing must in test_determinism.py.
"""

import io
import json
import pathlib

import pytest

from repro.obs import runtime
from repro.obs.profile import SubsystemProfiler
from repro.obs.telemetry import (
    TELEMETRY_SCHEMA,
    TelemetryEmitter,
    iter_telemetry,
    render_fleet,
    render_snapshot,
)

GOLDEN_DIR = pathlib.Path(__file__).parent.parent / "golden" / "goldens"


def _golden_text(name: str) -> str:
    path = GOLDEN_DIR / name
    if not path.exists():
        pytest.skip(f"golden {name} not generated yet")
    return path.read_text()


class _FakeStats:
    def __init__(self, dispatched, pending=0, heap_size=0):
        self.dispatched = dispatched
        self.pending = pending
        self.heap_size = heap_size


class _FakeScheduler:
    def __init__(self, dispatched, now=0.0, pending=0):
        self._stats = _FakeStats(dispatched, pending=pending, heap_size=pending)
        self.now = now

    def stats(self):
        return self._stats


def _drain(emitter, scheduler):
    """Tick through one full stride so the wall-clock check runs."""
    for _ in range(TelemetryEmitter.STRIDE):
        emitter.tick(scheduler)


class TestEmitter:
    def test_snapshot_shape_and_stream(self):
        stream = io.StringIO()
        emitter = TelemetryEmitter(stream=stream)
        emitter.interval_s = 0.0  # emit on every stride boundary
        sched = _FakeScheduler(dispatched=42, now=7.0, pending=3)
        _drain(emitter, sched)
        assert emitter.count == 1
        snapshot = emitter.last_snapshot
        assert snapshot["schema"] == TELEMETRY_SCHEMA
        assert snapshot["dispatched"] == 42
        assert snapshot["sim_t"] == 7.0
        assert snapshot["pending"] == 3
        assert snapshot["rss_kb"] > 0
        # peak comes from ru_maxrss, current from statm; the two kernel
        # sources can disagree by a page or two, so no >= assertion.
        assert snapshot["peak_rss_kb"] > 0
        # The stream got the same snapshot as one JSONL line.
        line = stream.getvalue().strip()
        assert json.loads(line) == snapshot

    def test_no_emission_before_interval(self):
        emitter = TelemetryEmitter(interval_s=3600.0)
        _drain(emitter, _FakeScheduler(dispatched=10))
        assert emitter.count == 0

    def test_finalize_snapshots_a_short_run(self):
        # A run that never crossed the interval still produces one
        # snapshot at finalize, with its scheduler's counts in it.
        emitter = TelemetryEmitter(interval_s=3600.0)
        emitter.tick(_FakeScheduler(dispatched=9, now=1.5))
        snapshot = emitter.finalize()
        assert snapshot["dispatched"] == 9
        assert snapshot["sim_t"] == 1.5

    def test_retired_scheduler_counts_are_banked(self):
        # Chaos-style runs build several schedulers under one emitter;
        # dispatched totals must accumulate across the swaps.
        emitter = TelemetryEmitter(interval_s=3600.0)
        emitter.tick(_FakeScheduler(dispatched=100))
        emitter.tick(_FakeScheduler(dispatched=5))
        assert emitter.finalize()["dispatched"] == 105

    def test_counter_deltas(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        counter = registry.counter("test.events")
        emitter = TelemetryEmitter()
        emitter.interval_s = 0.0
        with runtime.activated(metrics=registry):
            counter.inc(3)
            _drain(emitter, _FakeScheduler(dispatched=1))
            first = emitter.last_snapshot
            counter.inc(2)
            _drain(emitter, _FakeScheduler(dispatched=2))
            second = emitter.last_snapshot
        assert first["counters"]["test.events"] == 3
        assert first["deltas"]["test.events"] == 3
        assert second["counters"]["test.events"] == 5
        assert second["deltas"]["test.events"] == 2

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "run.telemetry.jsonl"
        with open(path, "w") as stream:
            emitter = TelemetryEmitter(stream=stream)
            emitter.interval_s = 0.0
            _drain(emitter, _FakeScheduler(dispatched=11))
            emitter.tick(_FakeScheduler(dispatched=4))
            emitter.finalize()
        snapshots = list(iter_telemetry(str(path)))
        assert len(snapshots) == 2
        assert snapshots[0]["dispatched"] == 11
        assert snapshots[-1]["dispatched"] == 15  # banked across the swap
        assert [s["seq"] for s in snapshots] == [0, 1]


class TestRendering:
    def test_render_snapshot_one_liner(self):
        line = render_snapshot(
            {
                "sim_t": 3600.0,
                "wall_s": 2.5,
                "events_per_s": 50000.0,
                "dispatched": 125000,
                "pending": 42,
                "rss_kb": 2048,
                "path_cache": {"hit_rate": 0.9876},
            }
        )
        assert "t+3600s sim" in line
        assert "125,000 total" in line
        assert "rss 2.0MiB" in line
        assert "path-cache 99%" in line

    def test_render_fleet(self):
        text = render_fleet(
            {
                "hosts": {
                    "0": {"acked": 5, "errors": 0, "lost": False,
                          "telemetry": {"points_done": 5, "rss_kb": 1024, "wall_s": 1.25}},
                    "1": {"acked": 2, "errors": 1, "lost": True, "telemetry": None},
                },
                "acked": 7,
                "leased": 9,
                "lost": 1,
            }
        )
        assert "fleet: 2 hosts, 7 acked / 9 leased, 1 lost" in text
        assert "host 0: 5 acked, 0 errors, 5 pts, rss 1.0MiB, 1.2s" in text
        assert "host 1: 2 acked, 1 errors, LOST" in text


class TestGoldenExhibitsUnderTelemetry:
    """The ISSUE invariant: goldens stay byte-identical with profiling
    and telemetry fully enabled -- crawl, chaos, and a dispatched sweep."""

    def _instruments(self):
        return dict(
            profiler=SubsystemProfiler(),
            telemetry=TelemetryEmitter(stream=io.StringIO(), interval_s=0.05),
        )

    def test_fig3_crawl_sweep_with_telemetry_matches_golden(self):
        from repro.runner import build_sweep, render_result, run_sweep

        spec = build_sweep(
            "fig3-zeus",
            root_seed=0,
            scale="tiny",
            sensors=4,
            announce_hours=1.0,
            hours=3.0,
            ratios=(1, 2, 4),
        )
        instruments = self._instruments()
        with runtime.activated(**instruments):
            result = run_sweep(spec, workers=1)
        assert render_result(result) + "\n" == _golden_text("fig3_zeus_small_sweep.txt")
        # And the instruments actually observed the run.
        assert instruments["profiler"].structure()
        assert instruments["telemetry"].finalize()["dispatched"] > 0

    def test_chaos_with_telemetry_is_byte_identical(self):
        from repro.workloads.chaos import render_degradation_report, run_chaos_matrix

        def run():
            results = run_chaos_matrix(
                ["burst-loss"], [0.2], scale="tiny",
                sensor_count=8, measure_hours=1.0,
            )
            return render_degradation_report(results)

        bare = run()
        with runtime.activated(**self._instruments()):
            instrumented = run()
        assert instrumented == bare

    @pytest.mark.parametrize("hosts", [2, 3])
    def test_fig2_dispatched_with_telemetry_matches_golden(self, hosts):
        from repro.runner import DispatchExecutor, build_sweep, render_result

        spec = build_sweep(
            "fig2",
            root_seed=0,
            scale="tiny",
            sensors=16,
            announce_hours=1.0,
            measure_hours=4.0,
            thresholds=(0.05, 0.10),
            ratios=(1, 2, 4),
            fleet_size=6,
        )
        executor = DispatchExecutor(hosts=hosts)
        with runtime.activated(**self._instruments()):
            result = executor.run(spec)
        assert render_result(result) + "\n" == _golden_text("fig2_small_sweep.txt")
        # Host telemetry flowed without perturbing the exhibit.
        fleet = executor.fleet_summary()
        assert fleet["acked"] > 0
        assert any(h["telemetry"] for h in fleet["hosts"].values())


class TestTelemetrySummary:
    def test_summary_over_snapshots(self):
        from repro.obs.analyze import telemetry_summary

        snapshots = [
            {"wall_s": 1.0, "dispatched": 1000, "events_per_s": 1000.0,
             "peak_rss_kb": 100},
            {"wall_s": 2.0, "dispatched": 4000, "events_per_s": 3000.0,
             "peak_rss_kb": 150},
        ]
        summary = telemetry_summary(snapshots)
        assert summary["snapshots"] == 2
        assert summary["wall_s"] == 2.0
        assert summary["dispatched"] == 4000
        assert summary["events_per_s_mean"] == pytest.approx(2000.0)
        assert summary["events_per_s_peak"] == 3000.0
        assert summary["peak_rss_kb"] == 150

    def test_summary_empty(self):
        from repro.obs.analyze import telemetry_summary

        assert telemetry_summary([]) is None
