"""IP churn and address aliasing: why crawls are capped at 24 hours.

"Address aliasing can occur with bots that use dynamic IP addresses,
leading to significant botnet size overestimations if the crawling
period is too long" (Section 2.1, after Kanich et al.).  The detector
likewise limits its history window to 24 hours.  This test wires the
IP-churn process to a live Zeus network and shows a long crawl
counting far more distinct IPs than there are bots.
"""

import pytest

from repro.core.crawler import ZeusCrawler
from repro.core.defects import ZeusDefectProfile
from repro.core.stealth import StealthPolicy
from repro.net.address import parse_ip
from repro.net.churn import IpChurnProcess
from repro.net.transport import Endpoint
from repro.sim.clock import DAY, HOUR
from repro.workloads.population import zeus_config
from repro.workloads.scenarios import build_zeus_scenario


@pytest.fixture(scope="module")
def churning_world():
    scenario = build_zeus_scenario(
        zeus_config("tiny", master_seed=67), sensor_count=2, announce_hours=1.0
    )
    net = scenario.net
    pool = net.routable_pool

    def reassign(node_id):
        bot = net.bots[node_id]
        if not bot.routable:
            return
        old_ip = bot.endpoint.ip
        new_ip = pool.allocate()
        bot.rebind(Endpoint(new_ip, bot.endpoint.port))
        pool.release(old_ip)

    churn = IpChurnProcess(
        net.scheduler, net.rngs.stream("ip-churn"), reassign, mean_lease=8 * HOUR
    )
    for bot in net.routable_bots:
        churn.add_node(bot.node_id)
    crawler = ZeusCrawler(
        name="long-crawler",
        endpoint=Endpoint(parse_ip("99.0.0.1"), 7000),
        transport=net.transport,
        scheduler=net.scheduler,
        rng=net.rngs.stream("crawler"),
        # Keep requesting for the full 3 days (600 requests per target
        # spaced 7.5 minutes apart) so re-addressed bots keep being
        # re-learned at their new IPs.
        policy=StealthPolicy(per_target_interval=450.0, requests_per_target=600),
        profile=ZeusDefectProfile(name="long"),
    )
    crawler.start(net.bootstrap_sample(8, seed=1))
    scenario.run_for(3 * DAY)
    return scenario, churn, crawler


class TestAliasing:
    def test_ip_churn_fired(self, churning_world):
        _, churn, _ = churning_world
        assert churn.reassignments > 20

    def test_long_crawl_overestimates_population(self, churning_world):
        """Distinct IPs counted far exceed the true population: the
        size-overestimation effect of multi-day crawls."""
        scenario, _, crawler = churning_world
        true_population = len(scenario.net.bots) + len(scenario.sensors)
        assert crawler.report.distinct_ips > 1.3 * true_population

    def test_bot_ids_do_not_alias(self, churning_world):
        """Counting by protocol identifier instead of IP stays at the
        true population -- identifiers survive re-addressing."""
        scenario, _, crawler = churning_world
        true_population = len(scenario.net.bots) + len(scenario.sensors)
        assert crawler.report.distinct_bots <= true_population + 1  # + crawler itself

    def test_one_day_window_bounds_aliasing(self, churning_world):
        """Within any single 24h window the overcount is much smaller
        -- the rationale for the paper's 24-hour crawl windows."""
        scenario, _, crawler = churning_world
        first_day = crawler.report.ips_found_by(
            scenario.measurement_start + DAY
        )
        assert first_day < crawler.report.distinct_ips