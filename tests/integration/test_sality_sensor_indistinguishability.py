"""Section 4.2's Sality finding, as an executable claim.

"In our analysis, we were unable to identify any sensors in Sality,
precisely because no nodes with unusually high in-degree were present,
and all high in-degree nodes responded correctly to probes for all
packet types."  A full-protocol Sality sensor answers hellos, peer
exchanges, and URL packs exactly like a bot -- so the probe battery
that exposes defective Zeus sensors has nothing to bite on.
"""

import random

import pytest

from repro.botnets.sality import protocol
from repro.botnets.sality.protocol import Command, SalityDecodeError
from repro.net.address import parse_ip
from repro.net.transport import Endpoint
from repro.sim.clock import HOUR
from repro.workloads.population import sality_config
from repro.workloads.scenarios import build_sality_scenario


@pytest.fixture(scope="module")
def scenario():
    scenario = build_sality_scenario(
        sality_config("tiny", master_seed=66), sensor_count=6, announce_hours=3.0
    )
    scenario.run_for(12 * HOUR)
    return scenario


def probe_battery(scenario, target_endpoint):
    """Probe one node with every Sality packet type; return the set of
    commands it answered correctly."""
    net = scenario.net
    prober = Endpoint(parse_ip("98.0.0.1"), 9000)
    replies = []
    # Snapshot payloads: builder transports recycle Message objects.
    net.transport.bind(prober, lambda m: replies.append(m.payload))
    rng = random.Random(5)
    bot_id = rng.getrandbits(32)
    batteries = [
        (Command.HELLO, protocol.encode_hello(9000)),
        (Command.PEER_REQUEST, b""),
        (Command.URLPACK_REQUEST, (1).to_bytes(4, "big")),
    ]
    for attempt in range(3):  # retries defeat transport loss
        for command, payload in batteries:
            message = protocol.make_message(command, bot_id, rng, payload=payload)
            net.transport.send(prober, target_endpoint, protocol.encode_packet(message))
        scenario.run_for(30.0)
    net.transport.unbind(prober)
    answered = set()
    for reply in replies:
        try:
            decoded = protocol.decode_packet(reply)
        except SalityDecodeError:
            continue
        answered.add(decoded.command)
    return answered

EXPECTED = {int(Command.HELLO), int(Command.PEER_RESPONSE), int(Command.URLPACK_RESPONSE)}


class TestIndistinguishability:
    def test_sensor_answers_all_packet_types(self, scenario):
        sensor = scenario.sensors[0]
        assert probe_battery(scenario, sensor.endpoint) == EXPECTED

    def test_bot_answers_all_packet_types(self, scenario):
        bot = scenario.net.routable_bots[0]
        assert probe_battery(scenario, bot.endpoint) == EXPECTED

    def test_probe_responses_identical_in_kind(self, scenario):
        """The probe battery cannot separate sensors from bots."""
        sensor_answers = probe_battery(scenario, scenario.sensors[1].endpoint)
        bot_answers = probe_battery(scenario, scenario.net.routable_bots[1].endpoint)
        assert sensor_answers == bot_answers

    def test_sensor_in_degree_within_population_range(self, scenario):
        """Sensors do not stick out by in-degree alone: well-reachable
        legitimate bots reach comparable in-degrees."""
        holders = {}
        for bot in scenario.net.bots.values():
            for entry in bot.peer_list:
                holders[entry.bot_id] = holders.get(entry.bot_id, 0) + 1
        sensor_degrees = [
            holders.get(sensor.bot_id, 0) for sensor in scenario.sensors
        ]
        bot_degrees = [
            holders.get(bot.bot_id, 0) for bot in scenario.net.routable_bots
        ]
        assert max(sensor_degrees) <= max(bot_degrees)
