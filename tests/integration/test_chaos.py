"""Acceptance tests for the chaos subsystem (the robustness tentpole).

The headline scenario: 20% correlated burst loss plus one leader crash
per detection round.  The recon pipeline must complete a full round
with degraded-but-nonzero detection, annotate the result with a
confidence, keep crawler pending state bounded, and replay
byte-for-byte under the same seed.
"""

import json

import pytest

from repro.workloads.chaos import (
    ChaosRunResult,
    render_degradation_report,
    run_chaos_matrix,
    run_chaos_scenario,
)
from repro.workloads.scenarios import CHAOS_KINDS, build_chaos_plan


def serialize(result: ChaosRunResult) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def blackout_run():
    """20% burst loss + one leader crash per round, zeus, tiny scale."""
    return run_chaos_scenario(
        "blackout", 0.2, family="zeus", scale="tiny", seed=7,
        sensor_count=16, measure_hours=3.0,
    )


class TestBlackoutAcceptance:
    def test_round_completes_with_degraded_detection(self, blackout_run):
        r = blackout_run
        # One of the four groups lost its leader: the round fell back
        # to the surviving majority and says so via its confidence.
        assert r.leader_crashes == 1
        assert r.confidence == pytest.approx(0.75)
        assert r.quorum_met
        # Detection degraded but did not die.
        assert r.detection_rate > 0.0

    def test_burst_loss_actually_injected(self, blackout_run):
        assert blackout_run.injected["dropped_burst"] > 0

    def test_pending_state_bounded(self, blackout_run):
        """Lost replies must not accumulate: after the run every
        stranded pending entry has been expired."""
        assert blackout_run.pending_after == 0
        assert blackout_run.requests_expired > 0

    def test_crawler_fought_back(self, blackout_run):
        assert blackout_run.retries_sent > 0
        assert blackout_run.coverage > 0.5


class TestReplayability:
    def test_identical_seeds_reproduce_identical_chaos(self):
        a = run_chaos_scenario(
            "blackout", 0.2, family="zeus", scale="tiny", seed=3,
            sensor_count=8, measure_hours=2.0,
        )
        b = run_chaos_scenario(
            "blackout", 0.2, family="zeus", scale="tiny", seed=3,
            sensor_count=8, measure_hours=2.0,
        )
        assert serialize(a) == serialize(b)

    def test_different_seed_changes_the_chaos(self):
        a = run_chaos_scenario(
            "burst-loss", 0.3, family="zeus", scale="tiny", seed=3,
            sensor_count=8, measure_hours=2.0,
        )
        b = run_chaos_scenario(
            "burst-loss", 0.3, family="zeus", scale="tiny", seed=4,
            sensor_count=8, measure_hours=2.0,
        )
        assert serialize(a) != serialize(b)


class TestMatrix:
    def test_matrix_covers_kinds_by_intensities(self):
        results = run_chaos_matrix(
            ["baseline", "leader-crash"], [0.0, 0.5],
            family="zeus", scale="tiny", seed=1,
            sensor_count=8, measure_hours=2.0,
        )
        assert [(r.kind, r.intensity) for r in results] == [
            ("baseline", 0.0), ("baseline", 0.5),
            ("leader-crash", 0.0), ("leader-crash", 0.5),
        ]
        # Intensity 0 of any kind is the clean control: full confidence.
        assert results[2].confidence == 1.0
        report = render_degradation_report(results)
        assert "leader-crash" in report
        assert "coverage" in report

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            run_chaos_matrix(["meteor-strike"], [0.1])

    def test_zero_intensity_plan_is_empty_for_every_kind(self):
        """Intensity 0 must never install fault machinery, so control
        rows replay the unfaulted simulation exactly."""
        for kind in CHAOS_KINDS:
            plan = build_chaos_plan(kind, 0.0, 0.0, 3600.0, ("sensor-000",))
            assert plan.empty, kind


class TestSalityFamily:
    def test_sality_chaos_runs_and_replays(self):
        a = run_chaos_scenario(
            "flaky-network", 0.2, family="sality", scale="tiny", seed=2,
            sensor_count=8, measure_hours=2.0,
        )
        b = run_chaos_scenario(
            "flaky-network", 0.2, family="sality", scale="tiny", seed=2,
            sensor_count=8, measure_hours=2.0,
        )
        assert serialize(a) == serialize(b)
        assert a.injected["dropped_burst"] > 0
        assert a.injected["duplicated"] > 0
        assert a.pending_after == 0
