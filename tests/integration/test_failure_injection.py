"""Failure-injection tests: the recon stack under hostile conditions.

Lossy links, churning populations, mid-crawl blacklisting, garbage
traffic, disinformation floods -- each must degrade results gracefully
rather than crash or corrupt state.
"""

import random

import pytest

from repro.botnets.antirecon import DisinformationPolicy
from repro.botnets.zeus.network import ZeusNetwork, ZeusNetworkConfig
from repro.core.anomaly import ZeusAnomalyAnalyzer
from repro.core.crawler import ZeusCrawler
from repro.core.defects import ZeusDefectProfile
from repro.core.stealth import StealthPolicy
from repro.net.address import is_reserved, parse_ip
from repro.net.churn import ChurnConfig
from repro.net.transport import Endpoint, TransportConfig
from repro.sim.clock import HOUR
from repro.workloads.population import zeus_config
from repro.workloads.scenarios import build_zeus_scenario


def make_crawler(net, profile=None, policy=None, ip="99.0.0.1"):
    return ZeusCrawler(
        name="crawler",
        endpoint=Endpoint(parse_ip(ip), 7000),
        transport=net.transport,
        scheduler=net.scheduler,
        rng=random.Random(1),
        policy=policy or StealthPolicy(per_target_interval=15.0, requests_per_target=4),
        profile=profile or ZeusDefectProfile(name="test"),
    )


class TestLossyNetwork:
    def test_crawl_survives_heavy_loss(self):
        """20% packet loss slows a crawl but never wedges it."""
        config = zeus_config("tiny", master_seed=71)
        config.transport.loss_rate = 0.20
        scenario = build_zeus_scenario(config, sensor_count=4, announce_hours=1.0)
        crawler = make_crawler(scenario.net)
        crawler.start(scenario.net.bootstrap_sample(5, seed=1))
        scenario.run_for(6 * HOUR)
        routable = {bot.endpoint.ip for bot in scenario.net.routable_bots}
        found = set(crawler.report.first_seen_ip) & routable
        assert len(found) >= 0.5 * len(routable)

    def test_botnet_survives_heavy_loss(self):
        config = zeus_config("tiny", master_seed=72)
        config.transport.loss_rate = 0.30
        scenario = build_zeus_scenario(config, sensor_count=2, announce_hours=1.0)
        scenario.run_for(8 * HOUR)
        assert all(len(bot.peer_list) > 0 for bot in scenario.net.bots.values())


class TestChurningPopulation:
    def test_crawl_during_churn(self):
        """Bots leaving mid-conversation must not wedge the crawler."""
        config = zeus_config(
            "tiny", master_seed=73, churn=ChurnConfig(mean_session=2 * HOUR, mean_offline=HOUR)
        )
        scenario = build_zeus_scenario(config, sensor_count=4, announce_hours=1.0)
        crawler = make_crawler(scenario.net)
        crawler.start(scenario.net.bootstrap_sample(8, seed=1))
        scenario.run_for(10 * HOUR)
        assert crawler.report.requests_sent > 0
        assert crawler.report.distinct_ips > 10
        # Offline bots never respond, so they are not "verified".
        assert len(crawler.report.verified_bots) <= crawler.report.distinct_bots


class TestBlacklistedMidCrawl:
    def test_hard_hitter_gets_starved(self):
        """Once auto-blacklisted everywhere, a hard hitter's responses
        dry up while a polite crawler's continue."""
        scenario = build_zeus_scenario(
            zeus_config("tiny", master_seed=74), sensor_count=4, announce_hours=1.0
        )
        net = scenario.net
        # Far beyond the blacklisting budget: 1-second bursts.
        hard = make_crawler(
            net,
            policy=StealthPolicy(per_target_interval=1.0, requests_per_target=60),
            ip="99.0.0.1",
        )
        polite = make_crawler(
            net,
            policy=StealthPolicy(per_target_interval=15.0, requests_per_target=4),
            ip="99.16.0.1",
        )
        hard.start(net.bootstrap_sample(5, seed=1))
        polite.start(net.bootstrap_sample(5, seed=1))
        scenario.run_for(4 * HOUR)
        blocked_on = sum(
            1 for bot in net.routable_bots
            if bot.auto_blacklister.is_blocked(hard.endpoint.ip)
        )
        assert blocked_on >= 0.5 * len(net.routable_bots)
        hard_rate = hard.report.responses_received / max(1, hard.report.requests_sent)
        polite_rate = polite.report.responses_received / max(1, polite.report.requests_sent)
        assert hard_rate < polite_rate


class TestGarbageTraffic:
    def test_bots_and_sensors_shrug_off_garbage(self):
        scenario = build_zeus_scenario(
            zeus_config("tiny", master_seed=75), sensor_count=3, announce_hours=1.0
        )
        net = scenario.net
        noise_source = Endpoint(parse_ip("97.0.0.1"), 1234)
        net.transport.bind(noise_source, lambda m: None)
        rng = random.Random(0)
        targets = [bot.endpoint for bot in net.routable_bots[:10]]
        targets += [sensor.endpoint for sensor in scenario.sensors]
        for k in range(200):
            blob = bytes(rng.getrandbits(8) for _ in range(rng.randrange(1, 120)))
            net.transport.send(noise_source, rng.choice(targets), blob)
        scenario.run_for(2 * HOUR)
        # Garbage is counted and dropped, never crashes dispatch.
        assert sum(bot.undecryptable for bot in net.bots.values()) > 0
        assert all(len(bot.peer_list) > 0 for bot in net.bots.values())
        # Pure-noise sources are not "invalid encryption" crawlers:
        # that defect needs interspersed valid traffic.
        findings = ZeusAnomalyAnalyzer().analyze(scenario.sensors)
        noise_findings = [f for f in findings if f.ip == noise_source.ip]
        for finding in noise_findings:
            assert "encryption" not in finding.defects


class TestDisinformation:
    def test_polluted_network_inflates_crawl_with_junk(self):
        """Disinformation feeds crawlers unverifiable junk addresses;
        recon code must be able to quantify the pollution."""
        rng = random.Random(0)
        config = ZeusNetworkConfig(
            population=120,
            routable_fraction=0.5,
            bootstrap_peers=8,
            master_seed=76,
            disinformation=DisinformationPolicy(rng, junk_ratio=0.3),
        )
        net = ZeusNetwork(config)
        net.build()
        net.start_all()
        crawler = make_crawler(net)
        crawler.start(net.bootstrap_sample(5, seed=1))
        net.run_for(6 * HOUR)
        junk_space = config.disinformation.junk_space
        junk_found = [ip for ip in crawler.report.first_seen_ip if ip in junk_space]
        assert junk_found, "disinformation never reached the crawler"
        # Junk addresses are never verified (nothing answers there).
        verified_ips = {
            crawler.report.bot_endpoints[b].ip for b in crawler.report.verified_bots
        }
        assert not (set(junk_found) & verified_ips)


class TestSensorEviction:
    def test_dead_sensor_evicted_from_peer_lists(self):
        """A sensor that stops responding is evicted -- the pressure
        that forces sensors to implement the full protocol (§2.2)."""
        scenario = build_zeus_scenario(
            zeus_config("tiny", master_seed=77), sensor_count=3, announce_hours=2.0
        )
        net = scenario.net
        victim = scenario.sensors[0]
        scenario.run_for(4 * HOUR)
        holders_before = sum(
            1 for bot in net.bots.values() if victim.bot_id in bot.peer_list
        )
        assert holders_before > 0
        victim.stop()
        scenario.run_for(12 * HOUR)
        holders_after = sum(
            1 for bot in net.bots.values() if victim.bot_id in bot.peer_list
        )
        assert holders_after < holders_before
