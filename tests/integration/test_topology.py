"""Acceptance tests for the topology-aware internet layer.

The headline scenario: a chaos run that detaches the largest edge AS
(with its whole customer cone) mid-measurement.  The recon must come
out *degraded but quorate* -- AS-partition drops visibly dent coverage
while quorum detection still completes -- and the whole run must replay
byte-for-byte under the same seed.  A flat run of the same shape must
be unaffected by the topology code existing at all (the golden suite
separately pins its exhibit bytes).
"""

import json

import pytest

from repro.obs import runtime
from repro.obs.analyze.health import analyze_events
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.workloads.chaos import ChaosRunResult, run_chaos_scenario


def serialize(result: ChaosRunResult) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def as_cut_run():
    """Detach the largest edge AS for 99% of the measurement window."""
    return run_chaos_scenario(
        "as-cut", 0.99, family="zeus", scale="tiny", seed=3,
        sensor_count=16, measure_hours=2.0, topology="synth:7",
    )


@pytest.fixture(scope="module")
def baseline_run():
    """The same run with no fault, same topology (degradation anchor)."""
    return run_chaos_scenario(
        "baseline", 0.99, family="zeus", scale="tiny", seed=3,
        sensor_count=16, measure_hours=2.0, topology="synth:7",
    )


class TestASCutAcceptance:
    def test_partition_drops_occurred(self, as_cut_run):
        assert as_cut_run.injected["dropped_as_partition"] > 0

    def test_degraded_but_quorate(self, as_cut_run, baseline_run):
        # The cut costs real verification traffic relative to the
        # fault-free run: requests into the detached cone expire and
        # their targets are eventually given up.  (Enumeration-level
        # coverage survives -- Zeus crawlers learn cone IPs from
        # peer-list replies without contacting them -- so the dent
        # shows in the resilience accounting, not the IP count.)
        assert as_cut_run.requests_expired > baseline_run.requests_expired
        assert as_cut_run.targets_given_up > baseline_run.targets_given_up
        # ...but detection still reaches quorum and classifies.
        assert as_cut_run.quorum_met
        assert as_cut_run.confidence > 0
        assert as_cut_run.detection_rate > 0

    def test_replays_byte_for_byte(self, as_cut_run):
        replay = run_chaos_scenario(
            "as-cut", 0.99, family="zeus", scale="tiny", seed=3,
            sensor_count=16, measure_hours=2.0, topology="synth:7",
        )
        assert serialize(replay) == serialize(as_cut_run)

    def test_requires_topology(self):
        with pytest.raises(ValueError, match="topology"):
            run_chaos_scenario("as-cut", 0.5, scale="tiny", seed=3)


class TestRoutedSinkholeAcceptance:
    def test_hijacked_traffic_reaches_collector(self):
        result = run_chaos_scenario(
            "routed-sinkhole", 0.6, family="zeus", scale="tiny", seed=3,
            sensor_count=8, measure_hours=2.0, topology="synth:7",
        )
        assert result.injected["sinkholed"] > 0
        assert result.injected["sinkhole_collected"] > 0
        assert (
            result.injected["sinkhole_collected"]
            <= result.injected["sinkholed"]
        )

    def test_sinkhole_works_without_topology(self):
        # Prefix hijack is address-level: it composes with flat runs.
        result = run_chaos_scenario(
            "routed-sinkhole", 0.6, family="zeus", scale="tiny", seed=3,
            sensor_count=8, measure_hours=2.0,
        )
        assert result.injected["sinkholed"] > 0


class TestHealthReportBreakdown:
    def test_per_as_section_present_for_topo_runs(self):
        tracer, registry = Tracer(), MetricsRegistry()
        with runtime.activated(tracer=tracer, metrics=registry):
            run_chaos_scenario(
                "as-cut", 0.6, family="zeus", scale="tiny", seed=3,
                sensor_count=8, measure_hours=2.0, topology="synth:7",
            )
        report = analyze_events(tracer.events(), registry.snapshot())
        topology = report.data["topology"]
        assert topology["sent_total"] > 0
        assert topology["dropped_total"] > 0
        assert any(label.startswith("AS") for label in topology["per_as"])
        cache = topology["path_cache"]
        assert cache["hits"] > cache["misses"]

    def test_flat_runs_have_no_topology_section(self):
        tracer, registry = Tracer(), MetricsRegistry()
        with runtime.activated(tracer=tracer, metrics=registry):
            run_chaos_scenario(
                "baseline", 0.1, family="zeus", scale="tiny", seed=3,
                sensor_count=8, measure_hours=1.0,
            )
        report = analyze_events(tracer.events(), registry.snapshot())
        assert "topology" not in report.data


class TestTraceDeterminism:
    def test_topo_run_traces_identically(self):
        blobs = []
        for _ in range(2):
            tracer = Tracer()
            with runtime.activated(tracer=tracer):
                run_chaos_scenario(
                    "as-cut", 0.5, family="zeus", scale="tiny", seed=11,
                    sensor_count=8, measure_hours=2.0, topology="synth:7",
                )
            blobs.append(
                json.dumps(
                    [
                        [e.time, e.cat, e.name, e.ph, e.dur, e.args]
                        for e in tracer.events()
                    ],
                    sort_keys=True,
                    default=str,
                )
            )
        assert blobs[0] == blobs[1]
