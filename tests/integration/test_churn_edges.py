"""Churn edge cases around in-flight recon state.

Three awkward interleavings the resilience machinery must survive:
a bot leaving between request and reply, an IP reassignment aliasing
a pending request to the wrong bot, and a detection round whose
history window spans the diurnal trough.
"""

import random

import pytest

from repro.core.crawler import ZeusCrawler
from repro.core.defects import ZeusDefectProfile
from repro.core.detection import DetectionConfig, SensorLogDataset, evaluate_detection
from repro.core.stealth import StealthPolicy
from repro.faults.retry import CHAOS_RETRY
from repro.net.address import parse_ip
from repro.net.churn import ChurnConfig, DiurnalModel
from repro.net.transport import Endpoint
from repro.sim.clock import DAY, HOUR
from repro.workloads.population import zeus_config
from repro.workloads.scenarios import build_zeus_scenario


def make_crawler(net, retry=None, policy=None):
    return ZeusCrawler(
        name="edge-crawler",
        endpoint=Endpoint(parse_ip("99.0.0.1"), 7000),
        transport=net.transport,
        scheduler=net.scheduler,
        rng=net.rngs.stream("crawler"),
        policy=policy or StealthPolicy(per_target_interval=30.0, requests_per_target=3),
        profile=ZeusDefectProfile(name="edge"),
        retry=retry,
    )


class TestOfflineBetweenRequestAndReply:
    def test_mass_departure_mid_crawl_leaves_no_stuck_state(self):
        """Every bot goes offline while requests are in flight: the
        pending entries must expire instead of leaking, and the crawl
        must end cleanly."""
        scenario = build_zeus_scenario(
            zeus_config("tiny", master_seed=11), sensor_count=2, announce_hours=0.5
        )
        net = scenario.net
        crawler = make_crawler(net)
        crawler.start(net.bootstrap_sample(8, seed=1))
        # Let the first request wave launch, then yank the population
        # offline before replies can drain.
        net.run_for(2.0)
        assert crawler.pending_requests > 0
        for bot in net.bots.values():
            bot.stop()
        net.run_for(HOUR)
        assert crawler.pending_requests == 0
        assert crawler.report.requests_expired > 0

    def test_requests_to_departed_bots_expire_then_recover_on_return(self):
        scenario = build_zeus_scenario(
            zeus_config("tiny", master_seed=12), sensor_count=2, announce_hours=0.5
        )
        net = scenario.net
        crawler = make_crawler(net, retry=CHAOS_RETRY)
        crawler.start(net.bootstrap_sample(8, seed=1))
        net.run_for(2.0)
        for bot in net.bots.values():
            bot.stop()
        net.run_for(200.0)  # requests time out against the absent bots
        expired_mid = crawler.report.requests_expired
        assert expired_mid > 0
        for bot in net.bots.values():
            bot.start()
        net.run_for(2 * HOUR)
        # The retrying crawler re-reached returned bots.
        assert len(crawler.report.verified_bots) > 0
        assert crawler.pending_requests <= len(crawler.report.first_seen_bot)


class TestIpReassignmentAliasing:
    def test_pending_entry_aliased_to_wrong_bot_is_harmless(self):
        """Bot A's address is handed to bot B while a request to A is
        pending: the reply never matches (B cannot decrypt a message
        keyed to A), the entry expires, and per-ID accounting stays
        coherent."""
        scenario = build_zeus_scenario(
            zeus_config("tiny", master_seed=13), sensor_count=2, announce_hours=0.5
        )
        net = scenario.net
        crawler = make_crawler(net)
        crawler.start(net.bootstrap_sample(8, seed=1))
        net.run_for(2.0)
        assert crawler.pending_requests > 0
        # Swap addresses between two routable bots while requests are
        # in flight: A moves to a fresh IP, B takes over A's old one.
        a, b = net.routable_bots[0], net.routable_bots[1]
        old_a, old_b = a.endpoint, b.endpoint
        fresh = Endpoint(net.routable_pool.allocate(), old_a.port)
        a.rebind(fresh)
        b.rebind(Endpoint(old_a.ip, old_b.port))
        net.run_for(2 * HOUR)
        assert crawler.pending_requests == 0
        # Verified identities are still genuine responders (routable
        # bots or sensors) -- the alias never got credited as bot A.
        genuine_ids = {bot.bot_id for bot in net.routable_bots}
        genuine_ids |= {sensor.bot_id for sensor in scenario.sensors}
        assert crawler.report.verified_bots <= genuine_ids

    def test_reassigned_bot_strands_requests_without_phantom_identity(self):
        """One bot moves to a fresh IP mid-crawl: requests to the
        vacated address drop observably (drop taps), the stranded
        pendings expire, and no phantom identity appears."""
        scenario = build_zeus_scenario(
            zeus_config("tiny", master_seed=14), sensor_count=2, announce_hours=0.5
        )
        net = scenario.net
        crawler = make_crawler(
            net,
            policy=StealthPolicy(per_target_interval=300.0, requests_per_target=48),
        )
        crawler.start(net.bootstrap_sample(8, seed=1))
        net.run_for(HOUR)
        mover = net.routable_bots[0]
        old_ip = mover.endpoint.ip
        new_ip = net.routable_pool.allocate()
        mover.rebind(Endpoint(new_ip, mover.endpoint.port))
        expired_before = crawler.report.requests_expired
        stale_drops = []
        net.transport.add_drop_tap(
            lambda m, reason: stale_drops.append(reason) if m.dst.ip == old_ip else None
        )
        net.run_for(2 * HOUR)
        # The crawler kept polling the vacated address; every one of
        # those requests was dropped and its pending entry expired.
        assert "unbound_dst" in stale_drops
        assert crawler.report.requests_expired > expired_before
        assert old_ip in crawler.report.first_seen_ip
        # No phantom identity appeared: IDs never exceed the true
        # population (re-addressing inflates IPs, not identifiers).
        assert crawler.report.distinct_bots <= len(net.bots) + len(scenario.sensors)


class TestDetectionAcrossDiurnalTrough:
    def test_round_spanning_trough_still_detects(self):
        """A detection round whose history window covers the diurnal
        trough (most bots offline) completes and still flags the
        crawler: sensor logs, not bot liveness, carry the evidence."""
        diurnal = DiurnalModel()  # peak at 20:00, trough around 08:00
        scenario = build_zeus_scenario(
            zeus_config(
                "tiny",
                master_seed=15,
                churn=ChurnConfig(
                    mean_session=4 * HOUR, mean_offline=2 * HOUR, diurnal=diurnal
                ),
            ),
            sensor_count=16,
            announce_hours=1.0,
        )
        net = scenario.net
        crawler = make_crawler(
            net,
            retry=CHAOS_RETRY,
            policy=StealthPolicy(per_target_interval=60.0, requests_per_target=10),
        )
        crawler.start(net.bootstrap_sample(8, seed=1))

        assert net.churn is not None
        net.run_for(8 * HOUR - net.scheduler.now)  # ~08:00, the trough
        trough_online = net.churn.online_count()
        assert diurnal.online_probability(net.scheduler.now) < 0.5

        net.run_for(12 * HOUR)  # ~20:00, the peak
        peak_online = net.churn.online_count()
        assert trough_online < peak_online

        dataset = SensorLogDataset.from_zeus_sensors(
            scenario.sensors, since=scenario.measurement_start
        )
        # Close the round just after the trough: the window spans it.
        result = evaluate_detection(
            dataset,
            crawler_ips={crawler.endpoint.ip},
            config=DetectionConfig(group_bits=2, threshold=0.30),
            rng=random.Random(15),
            round_end=9 * HOUR,
        )
        assert result.detection_rate == 1.0
        assert result.confidence == 1.0
        assert result.quorum_met
