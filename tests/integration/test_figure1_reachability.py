"""Figure 1 of the paper, as an executable scenario.

The figure shows bots a..e where c, d, e are non-routable; e has no
incoming edge from any routable bot.  Consequences:

* a crawler can contact and verify only a and b;
* it can *learn about* c and d (they appear in a/b's peer lists) but
  never verify them;
* e is undiscoverable by any crawler, regardless of protocol;
* a sensor, once announced, hears from every bot that knows it --
  including the non-routable c, d, and e.
"""

import random

import pytest

from repro.botnets.zeus import protocol
from repro.botnets.zeus.bot import ZeusBot, ZeusConfig
from repro.core.crawler import ZeusCrawler
from repro.core.sensor import ZeusSensor
from repro.core.stealth import StealthPolicy
from repro.net.address import parse_ip
from repro.net.transport import Endpoint, Transport, TransportConfig
from repro.sim.clock import HOUR
from repro.sim.scheduler import Scheduler


@pytest.fixture()
def figure1():
    scheduler = Scheduler()
    transport = Transport(
        scheduler, random.Random(0), config=TransportConfig(loss_rate=0.0)
    )
    bots = {}
    layout = {  # name -> (ip, routable)
        "a": ("25.0.0.1", True),
        "b": ("25.16.0.1", True),
        "c": ("60.0.0.1", False),
        "d": ("60.16.0.1", False),
        "e": ("60.32.0.1", False),
    }
    for index, (name, (ip, routable)) in enumerate(layout.items()):
        rng = random.Random(100 + index)
        bots[name] = ZeusBot(
            node_id=name,
            bot_id=protocol.random_id(rng),
            endpoint=Endpoint(parse_ip(ip), 3000 + index),
            transport=transport,
            scheduler=scheduler,
            rng=rng,
            routable=routable,
        )
    # Figure 1 edges ("an arrow from a to b indicates that a knows b"):
    #   a -> b, a -> c;  b -> a, b -> d;  c -> a, c -> d;
    #   d -> b, d -> e;  e -> c
    # NOTE: e is known only by d (non-routable), so no routable bot
    # ever advertises e.
    edges = {
        "a": ["b", "c"],
        "b": ["a", "d"],
        "c": ["a", "d"],
        "d": ["b", "e"],
        "e": ["c"],
    }
    for src, dsts in edges.items():
        bots[src].seed_peers([(bots[d].bot_id, bots[d].endpoint) for d in dsts])
    for bot in bots.values():
        bot.start()
    return scheduler, transport, bots


class TestFigure1Crawler:
    def crawl(self, scheduler, transport, bots, hours=8):
        crawler = ZeusCrawler(
            name="crawler",
            endpoint=Endpoint(parse_ip("99.0.0.1"), 7000),
            transport=transport,
            scheduler=scheduler,
            rng=random.Random(1),
            policy=StealthPolicy(per_target_interval=60.0, requests_per_target=6),
        )
        crawler.start([(bots["a"].bot_id, bots["a"].endpoint)])
        scheduler.run_until(scheduler.now + hours * HOUR)
        return crawler

    def test_crawler_verifies_only_routable_bots(self, figure1):
        scheduler, transport, bots = figure1
        crawler = self.crawl(scheduler, transport, bots)
        verified_names = {
            name for name, bot in bots.items() if bot.bot_id in crawler.report.verified_bots
        }
        assert verified_names == {"a", "b"}

    def test_crawler_learns_c_and_d_but_cannot_verify(self, figure1):
        scheduler, transport, bots = figure1
        crawler = self.crawl(scheduler, transport, bots)
        learned = {
            name for name, bot in bots.items() if bot.bot_id in crawler.report.first_seen_bot
        }
        assert {"c", "d"} <= learned

    def test_e_is_undetectable_to_crawlers(self, figure1):
        """e has no in-edge from a routable bot: no crawler can ever
        learn it exists."""
        scheduler, transport, bots = figure1
        crawler = self.crawl(scheduler, transport, bots, hours=16)
        assert bots["e"].bot_id not in crawler.report.first_seen_bot


class TestFigure1Sensor:
    def test_sensor_hears_from_non_routable_bots(self, figure1):
        scheduler, transport, bots = figure1
        rng = random.Random(9)
        sensor = ZeusSensor(
            node_id="sensor",
            bot_id=protocol.random_id(rng),
            endpoint=Endpoint(parse_ip("45.0.0.1"), 6000),
            transport=transport,
            scheduler=scheduler,
            rng=rng,
            announce_duration=4 * HOUR,
        )
        # The sensor announces itself to the two routable bots, whose
        # peer lists then propagate it to everyone -- including e.
        sensor.seed_peers(
            [(bots[name].bot_id, bots[name].endpoint) for name in ("a", "b")]
        )
        sensor.start()
        scheduler.run_until(scheduler.now + 48 * HOUR)
        heard = {
            name
            for name, bot in bots.items()
            if bot.endpoint.ip in sensor.observed_ips()
        }
        # Verifiable contact with non-routable bots -- the sensor
        # advantage of Section 2.2.
        assert {"c", "d", "e"} & heard, heard
