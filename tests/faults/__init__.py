"""Fault-injection subsystem tests."""
