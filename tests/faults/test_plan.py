"""Unit tests for fault plan data structures."""

import pytest

from repro.faults.plan import (
    CRASH,
    MUTE,
    NO_FAULTS,
    FaultPlan,
    GilbertElliottConfig,
    LatencySpike,
    NodeFault,
    Partition,
)
from repro.net.address import parse_ip


class TestGilbertElliott:
    def test_stationary_math(self):
        ge = GilbertElliottConfig(p_enter_bad=0.1, p_exit_bad=0.4, loss_bad=0.8)
        assert ge.stationary_bad_fraction == pytest.approx(0.2)
        assert ge.mean_loss_rate == pytest.approx(0.2 * 0.8)

    def test_for_mean_loss_hits_target(self):
        for target in (0.05, 0.2, 0.5):
            ge = GilbertElliottConfig.for_mean_loss(target, burst_length=8.0)
            assert ge.mean_loss_rate == pytest.approx(target, rel=1e-6)
            assert 1.0 / ge.p_exit_bad == pytest.approx(8.0)

    def test_for_mean_loss_zero_is_lossless(self):
        ge = GilbertElliottConfig.for_mean_loss(0.0)
        assert ge.mean_loss_rate == pytest.approx(0.0, abs=1e-6)

    def test_for_mean_loss_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottConfig.for_mean_loss(0.95, loss_bad=0.9)
        with pytest.raises(ValueError):
            GilbertElliottConfig.for_mean_loss(0.2, burst_length=0.5)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottConfig(p_enter_bad=0.0)
        with pytest.raises(ValueError):
            GilbertElliottConfig(loss_bad=1.5)


class TestPartition:
    def test_separates_only_across_sides(self):
        part = Partition.parse(
            start=0.0,
            duration=10.0,
            side_a=("10.0.0.0/8",),
            side_b=("20.0.0.0/8",),
        )
        a = parse_ip("10.1.2.3")
        b = parse_ip("20.4.5.6")
        other = parse_ip("30.0.0.1")
        assert part.separates(a, b)
        assert part.separates(b, a)
        assert not part.separates(a, a)
        assert not part.separates(a, other)
        assert not part.separates(other, b)

    def test_active_window(self):
        part = Partition.parse(5.0, 10.0, ("10.0.0.0/8",), ("20.0.0.0/8",))
        assert not part.active(4.9)
        assert part.active(5.0)
        assert part.active(14.9)
        assert not part.active(15.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Partition.parse(0.0, 10.0, (), ("20.0.0.0/8",))
        with pytest.raises(ValueError):
            Partition.parse(0.0, 0.0, ("10.0.0.0/8",), ("20.0.0.0/8",))


class TestLatencySpike:
    def test_active_window(self):
        spike = LatencySpike(100.0, 50.0, 1.0, 2.0)
        assert spike.active(100.0)
        assert not spike.active(150.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencySpike(-1.0, 10.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            LatencySpike(0.0, 10.0, 2.0, 1.0)


class TestNodeFault:
    def test_kinds_validated(self):
        NodeFault(at=0.0, node_id="bot-000001", duration=1.0, kind=CRASH)
        NodeFault(at=0.0, node_id="bot-000001", duration=1.0, kind=MUTE)
        with pytest.raises(ValueError):
            NodeFault(at=0.0, node_id="bot-000001", duration=1.0, kind="explode")


class TestFaultPlan:
    def test_empty_detection(self):
        assert NO_FAULTS.empty
        assert not FaultPlan(duplicate_rate=0.1).empty
        assert not FaultPlan(
            node_faults=(NodeFault(at=1.0, node_id="x", duration=1.0),)
        ).empty

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(duplicate_rate=1.0)
        with pytest.raises(ValueError):
            FaultPlan(reorder_rate=-0.5)

    def test_describe_lists_every_fault(self):
        plan = FaultPlan(
            name="storm",
            gilbert_elliott=GilbertElliottConfig.for_mean_loss(0.2),
            duplicate_rate=0.05,
            latency_spikes=(LatencySpike(10.0, 5.0, 1.0, 2.0),),
            node_faults=(NodeFault(at=3.0, node_id="bot-000001", duration=60.0),),
        )
        text = plan.describe()
        assert "storm" in text
        assert "burst loss" in text
        assert "duplication" in text
        assert "latency spike" in text
        assert "bot-000001" in text
        assert "(empty)" in NO_FAULTS.describe()
