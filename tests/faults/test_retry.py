"""Unit tests for the shared retry policy."""

import random

import pytest

from repro.faults.retry import CHAOS_RETRY, NO_RETRY, RetryPolicy


class TestRetryPolicy:
    def test_no_retry_still_times_out(self):
        """NO_RETRY keeps the expiry half of the machinery: pendings
        expire, they just are not re-issued."""
        assert NO_RETRY.timeout > 0
        assert NO_RETRY.max_retries == 0

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(
            backoff_base=10.0, backoff_multiplier=2.0, jitter=0.0, max_retries=5
        )
        rng = random.Random(0)
        delays = [policy.backoff(attempt, rng) for attempt in range(4)]
        assert delays == [10.0, 20.0, 40.0, 80.0]

    def test_jitter_bounds(self):
        policy = RetryPolicy(backoff_base=10.0, backoff_multiplier=1.0, jitter=0.5)
        rng = random.Random(42)
        for attempt in range(50):
            delay = policy.backoff(attempt % 3, rng)
            base = 10.0
            assert base * 0.5 <= delay <= base * 1.5

    def test_backoff_is_deterministic_per_seed(self):
        policy = CHAOS_RETRY
        a = [policy.backoff(i % 3, random.Random(7)) for i in range(5)]
        b = [policy.backoff(i % 3, random.Random(7)) for i in range(5)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(retry_budget=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)
