"""Unit tests for the fault injector (transport wrapper + node driver)."""

import random

import pytest

from repro.faults.injector import FaultyTransport, NodeFaultDriver, resolver_for
from repro.faults.plan import (
    CRASH,
    MUTE,
    NO_FAULTS,
    OUTAGE,
    FaultPlan,
    GilbertElliottConfig,
    LatencySpike,
    NodeFault,
    Partition,
)
from repro.net.address import parse_ip
from repro.net.transport import Endpoint, Transport, TransportConfig
from repro.sim.scheduler import Scheduler

A = Endpoint(parse_ip("10.0.0.1"), 5000)
B = Endpoint(parse_ip("20.0.0.1"), 5001)
QUIET = TransportConfig(latency_min=0.01, latency_max=0.05, loss_rate=0.0)


def faulty(plan, seed=0, config=QUIET):
    sched = Scheduler()
    transport = FaultyTransport(
        sched,
        random.Random(seed),
        plan=plan,
        fault_rng=random.Random(seed + 1000),
        config=config,
    )
    return sched, transport


def blast(sched, transport, count=200):
    inbox = []
    transport.bind(A, inbox.append)
    transport.bind(B, lambda m: None)
    for _ in range(count):
        transport.send(B, A, b"x")
    sched.run()
    return inbox


class TestFaultyTransport:
    def test_empty_plan_is_transparent(self):
        """An empty plan must reproduce the plain transport exactly,
        including its RNG consumption."""
        sched_a, plain = Scheduler(), None
        plain = Transport(sched_a, random.Random(5), config=QUIET)
        plain_inbox = []
        plain.bind(A, plain_inbox.append)
        plain.bind(B, lambda m: None)
        for _ in range(50):
            plain.send(B, A, b"x")
        sched_a.run()

        sched_b, wrapped = faulty(NO_FAULTS, seed=5)
        wrapped_inbox = blast(sched_b, wrapped, count=50)
        assert [(m.sent_at, m.delivered_at) for m in plain_inbox] == [
            (m.sent_at, m.delivered_at) for m in wrapped_inbox
        ]

    def test_burst_loss_drops_in_bursts(self):
        plan = FaultPlan(
            name="bursty",
            gilbert_elliott=GilbertElliottConfig.for_mean_loss(0.3, burst_length=10.0),
        )
        sched, transport = faulty(plan, seed=3)
        inbox = blast(sched, transport, count=2000)
        dropped = transport.fault_stats.dropped_burst
        assert dropped > 0
        assert len(inbox) == 2000 - dropped
        # Long-run loss near the configured mean (loose tolerance: one
        # seed, finite run).
        assert 0.1 < dropped / 2000 < 0.5
        assert transport.fault_stats.ge_transitions > 0

    def test_partition_blocks_both_directions_only_while_active(self):
        plan = FaultPlan(
            name="split",
            partitions=(
                Partition.parse(10.0, 20.0, ("10.0.0.0/8",), ("20.0.0.0/8",)),
            ),
        )
        sched, transport = faulty(plan)
        inbox_a, inbox_b = [], []
        transport.bind(A, inbox_a.append)
        transport.bind(B, inbox_b.append)
        transport.send(B, A, b"before")
        sched.run_until(15.0)
        transport.send(B, A, b"during")
        transport.send(A, B, b"during-rev")
        sched.run_until(40.0)
        transport.send(B, A, b"after")
        sched.run()
        assert [m.payload for m in inbox_a] == [b"before", b"after"]
        assert inbox_b == []
        assert transport.fault_stats.dropped_partition == 2

    def test_latency_spike_slows_sends_in_window(self):
        plan = FaultPlan(
            name="spiky",
            latency_spikes=(LatencySpike(0.0, 100.0, 5.0, 6.0),),
        )
        sched, transport = faulty(plan)
        inbox = blast(sched, transport, count=10)
        for m in inbox:
            assert m.delivered_at - m.sent_at >= 5.0
        assert transport.fault_stats.spiked_sends == 10

    def test_plan_dup_reorder_folded_into_config(self):
        plan = FaultPlan(name="dupes", duplicate_rate=0.5, reorder_rate=0.25)
        _, transport = faulty(plan)
        assert transport.config.duplicate_rate == 0.5
        assert transport.config.reorder_rate == 0.25


class FakeNode:
    def __init__(self, node_id):
        self.node_id = node_id
        self.online = True
        self.gossip_suppressed = False
        self.log = []

    def start(self):
        self.online = True
        self.log.append("start")

    def stop(self):
        self.online = False
        self.log.append("stop")


class TestNodeFaultDriver:
    def test_crash_restart_cycle(self):
        sched = Scheduler()
        node = FakeNode("bot-000001")
        driver = NodeFaultDriver(sched, resolver_for({"bot-000001": node}))
        plan = FaultPlan(
            node_faults=(NodeFault(at=10.0, node_id="bot-000001", duration=30.0),)
        )
        assert driver.install(plan) == 1
        sched.run_until(20.0)
        assert not node.online
        sched.run()
        assert node.online
        assert node.log == ["stop", "start"]
        assert driver.crashes == 1
        assert [(e[2], e[3]) for e in driver.events] == [
            (CRASH, "down"), (CRASH, "up"),
        ]

    def test_mute_suppresses_without_stopping(self):
        sched = Scheduler()
        node = FakeNode("sensor-001")
        driver = NodeFaultDriver(sched, resolver_for({"sensor-001": node}))
        plan = FaultPlan(
            node_faults=(
                NodeFault(at=5.0, node_id="sensor-001", duration=10.0, kind=MUTE),
            )
        )
        driver.install(plan)
        sched.run_until(7.0)
        assert node.gossip_suppressed
        assert node.online  # still bound, still answering
        sched.run()
        assert not node.gossip_suppressed
        assert driver.mutes == 1
        assert node.log == []

    def test_outage_counted_separately(self):
        sched = Scheduler()
        node = FakeNode("sensor-002")
        driver = NodeFaultDriver(sched, resolver_for({"sensor-002": node}))
        plan = FaultPlan(
            node_faults=(
                NodeFault(at=1.0, node_id="sensor-002", duration=2.0, kind=OUTAGE),
            )
        )
        driver.install(plan)
        sched.run()
        assert driver.outages == 1
        assert driver.crashes == 0

    def test_unknown_node_counts_unresolved(self):
        sched = Scheduler()
        driver = NodeFaultDriver(sched, resolver_for({}))
        plan = FaultPlan(
            node_faults=(NodeFault(at=1.0, node_id="ghost", duration=2.0),)
        )
        driver.install(plan)
        sched.run()
        assert driver.unresolved == 1
        assert driver.events == []

    def test_past_faults_skipped(self):
        sched = Scheduler()
        sched.run_until(100.0)
        node = FakeNode("bot-000001")
        driver = NodeFaultDriver(sched, resolver_for({"bot-000001": node}))
        plan = FaultPlan(
            node_faults=(NodeFault(at=10.0, node_id="bot-000001", duration=5.0),)
        )
        assert driver.install(plan) == 0
