"""Integration tests for the canned scenarios (small scale)."""

import pytest

from repro.core.anomaly import SalityAnomalyAnalyzer, ZeusAnomalyAnalyzer
from repro.core.detection import SensorLogDataset
from repro.workloads.crawler_profiles import SALITY_CRAWLER_INSTANCES, ZEUS_CRAWLERS
from repro.workloads.population import SCALES, sality_config, zeus_config
from repro.workloads.scenarios import (
    build_sality_scenario,
    build_zeus_scenario,
    crawler_endpoint,
    launch_sality_fleet,
    launch_zeus_fleet,
    sensor_endpoint,
)
from repro.net.address import subnet_key
from repro.sim.clock import HOUR


class TestEndpoints:
    def test_sensor_endpoints_distinct_slash20s(self):
        keys = {subnet_key(sensor_endpoint(i).ip, 20) for i in range(512)}
        assert len(keys) == 512

    def test_crawler_instances_share_slash24(self):
        a = crawler_endpoint(0, instance=0)
        b = crawler_endpoint(0, instance=5)
        assert subnet_key(a.ip, 24) == subnet_key(b.ip, 24)
        assert a.ip != b.ip

    def test_out_of_block_rejected(self):
        with pytest.raises(ValueError):
            sensor_endpoint(10**6)
        with pytest.raises(ValueError):
            crawler_endpoint(10**6)


class TestPopulationPresets:
    def test_scales_exist(self):
        for scale in ("tiny", "small", "medium", "large"):
            assert scale in SCALES

    def test_config_builders(self):
        config = zeus_config("tiny", master_seed=5)
        assert config.population == 120
        assert config.master_seed == 5
        sconfig = sality_config("tiny", routable_fraction=0.9)
        assert sconfig.routable_fraction == 0.9


class TestZeusScenario:
    @pytest.fixture(scope="class")
    def scenario(self):
        scenario = build_zeus_scenario(
            zeus_config("tiny", master_seed=2), sensor_count=24, announce_hours=3.0
        )
        launch_zeus_fleet(scenario, ZEUS_CRAWLERS[:4])
        scenario.run_for(6 * HOUR)
        return scenario

    def test_sensors_receive_traffic(self, scenario):
        contacted = [s for s in scenario.sensors if s.observations]
        assert len(contacted) >= 20

    def test_crawlers_reach_sensors(self, scenario):
        crawler_ips = scenario.crawler_ips
        seen = set()
        for sensor in scenario.sensors:
            seen |= sensor.observed_ips() & crawler_ips
        assert len(seen) >= 3

    def test_analyzer_finds_fleet(self, scenario):
        findings = ZeusAnomalyAnalyzer().analyze(scenario.sensors)
        flagged = {f.ip for f in findings if f.defects}
        assert flagged & scenario.crawler_ips

    def test_dataset_construction(self, scenario):
        dataset = SensorLogDataset.from_zeus_sensors(scenario.sensors)
        assert dataset.sensor_count == 24
        assert dataset.request_count() > 0


class TestSalityScenario:
    @pytest.fixture(scope="class")
    def scenario(self):
        scenario = build_sality_scenario(
            sality_config("tiny", master_seed=2), sensor_count=16, announce_hours=3.0
        )
        launch_sality_fleet(scenario, SALITY_CRAWLER_INSTANCES[:2])
        scenario.run_for(6 * HOUR)
        return scenario

    def test_instances_launched(self, scenario):
        assert len(scenario.crawlers) == 7  # 6 grouped + 1

    def test_sensors_log_crawler_traffic(self, scenario):
        crawler_ips = scenario.crawler_ips
        seen = set()
        for sensor in scenario.sensors:
            seen |= sensor.observed_ips() & crawler_ips
        assert seen

    def test_analyzer_runs(self, scenario):
        findings = SalityAnomalyAnalyzer().analyze(scenario.sensors)
        assert isinstance(findings, list)
