"""Tests that the transcribed crawler/sensor profiles satisfy every
aggregate count the paper states in Sections 4.1 and 4.2."""

from repro.workloads.crawler_profiles import (
    SALITY_CRAWLERS,
    SALITY_CRAWLER_INSTANCES,
    ZEUS_CRAWLERS,
    sality_aggregate_counts,
    zeus_aggregate_counts,
)
from repro.workloads.sensor_profiles import ZEUS_SENSOR_PROFILES


class TestZeusFleet:
    def test_fleet_size(self):
        assert len(ZEUS_CRAWLERS) == 21

    def test_prose_counts(self):
        counts = zeus_aggregate_counts()
        assert counts["lop_range"] == 14       # constrained padding length
        assert counts["rnd_range"] == 10       # static/constrained random byte
        assert counts["ttl_range"] == 10       # static/constrained TTL
        assert counts["session_range"] == 11   # static/small-pool sessions
        assert counts["session_entropy"] == 3
        assert counts["random_source"] == 3
        assert counts["source_entropy"] == 5
        assert counts["padding_entropy"] == 5
        assert counts["encryption"] == 7
        assert counts["protocol_logic"] == 17
        assert counts["hard_hitter"] == 9

    def test_range_anomaly_in_20_of_21(self):
        range_rows = {"rnd_range", "ttl_range", "lop_range", "session_range", "random_source"}
        with_range = [
            p for p in ZEUS_CRAWLERS if range_rows & set(p.defect_names())
        ]
        assert len(with_range) == 20

    def test_coverage_distribution(self):
        coverages = [p.coverage for p in ZEUS_CRAWLERS]
        assert max(coverages) == 0.92
        at_least_20 = sum(1 for c in coverages if c >= 0.20)
        assert at_least_20 >= 17  # "nearly all crawlers cover at least 20%"
        at_least_50 = sum(1 for c in coverages if c >= 0.50)
        assert at_least_50 >= 11  # "most crawlers cover 50% or more"
        assert min(coverages) <= 0.02  # the open-source crawler

    def test_padding_entropy_never_with_constrained_lop(self):
        """A crawler with zero padding has no padding bytes to judge."""
        for profile in ZEUS_CRAWLERS:
            assert not (profile.padding_entropy and profile.lop_range), profile.name

    def test_random_source_and_ascii_source_mutually_exclusive(self):
        for profile in ZEUS_CRAWLERS:
            assert not (profile.random_source and profile.source_entropy), profile.name

    def test_names_unique(self):
        names = [p.name for p in ZEUS_CRAWLERS]
        assert len(set(names)) == 21


class TestSalityFleet:
    def test_eleven_instances_in_six_columns(self):
        assert len(SALITY_CRAWLERS) == 6
        assert sum(count for _, count in SALITY_CRAWLER_INSTANCES) == 11
        assert SALITY_CRAWLER_INSTANCES[0][1] == 6  # the grouped subnet

    def test_prose_counts(self):
        counts = sality_aggregate_counts()
        assert counts["lop_range"] == 11   # all constrained/fixed padding
        assert counts["port_range"] == 10  # 10 of 11 fixed source port
        assert counts["hard_hitter"] == 11
        assert counts["protocol_logic"] == 9
        assert counts["version"] == 9      # only 2 valid minor versions

    def test_no_id_or_encryption_anomalies(self):
        counts = sality_aggregate_counts()
        assert "random_id" not in counts
        assert "encryption" not in counts

    def test_grouped_column_coverage(self):
        assert SALITY_CRAWLERS[0].coverage == 0.69
        assert all(p.coverage == 1.0 for p in SALITY_CRAWLERS[1:])


class TestSensorProfiles:
    def test_ten_organizations(self):
        assert len(ZEUS_SENSOR_PROFILES) == 10

    def test_all_lack_proxy_and_update_support(self):
        assert all(p.no_proxy_reply for p in ZEUS_SENSOR_PROFILES)
        assert all(p.no_update_support for p in ZEUS_SENSOR_PROFILES)

    def test_all_but_three_return_empty_peer_lists(self):
        empty = [p for p in ZEUS_SENSOR_PROFILES if p.empty_peer_lists]
        assert len(empty) == 7

    def test_non_empty_responders_serve_duplicates(self):
        for profile in ZEUS_SENSOR_PROFILES:
            if not profile.empty_peer_lists:
                assert profile.duplicate_peers

    def test_only_three_valid_versions(self):
        valid = [p for p in ZEUS_SENSOR_PROFILES if not p.stale_version]
        assert len(valid) == 3
