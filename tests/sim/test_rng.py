"""Unit tests for deterministic RNG streams."""

from repro.sim.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "churn") == derive_seed(42, "churn")

    def test_distinct_names_distinct_seeds(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_distinct_masters_distinct_seeds(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_seed_fits_64_bits(self):
        assert 0 <= derive_seed(7, "x") < 2**64


class TestRngRegistry:
    def test_same_name_same_object(self):
        reg = RngRegistry(0)
        assert reg.stream("x") is reg.stream("x")

    def test_streams_reproducible_across_registries(self):
        a = RngRegistry(5).stream("net")
        b = RngRegistry(5).stream("net")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_streams_isolated(self):
        reg = RngRegistry(5)
        before = RngRegistry(5).stream("b").random()
        reg.stream("a").random()  # draws on "a" must not affect "b"
        assert reg.stream("b").random() == before

    def test_fork_independent_of_parent(self):
        parent = RngRegistry(9)
        child = parent.fork("bot-1")
        assert child.stream("x").random() != parent.stream("x").random()

    def test_fork_reproducible(self):
        a = RngRegistry(9).fork("bot-1").stream("x").random()
        b = RngRegistry(9).fork("bot-1").stream("x").random()
        assert a == b

    def test_contains(self):
        reg = RngRegistry(0)
        assert "n" not in reg
        reg.stream("n")
        assert "n" in reg
