"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.sim.clock import HOUR
from repro.sim.scheduler import Scheduler


class TestScheduling:
    def test_call_at_runs_at_absolute_time(self):
        sched = Scheduler()
        fired = []
        sched.call_at(5.0, lambda: fired.append(sched.now))
        sched.run()
        assert fired == [5.0]

    def test_call_later_runs_relative_to_now(self):
        sched = Scheduler()
        fired = []
        sched.call_at(2.0, lambda: sched.call_later(3.0, lambda: fired.append(sched.now)))
        sched.run()
        assert fired == [5.0]

    def test_args_passed_through(self):
        sched = Scheduler()
        seen = []
        sched.call_later(1.0, lambda a, b: seen.append((a, b)), "x", 2)
        sched.run()
        assert seen == [("x", 2)]

    def test_past_scheduling_rejected(self):
        sched = Scheduler()
        sched.call_at(10.0, lambda: None)
        sched.run()
        with pytest.raises(ValueError):
            sched.call_at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Scheduler().call_later(-1.0, lambda: None)


class TestOrdering:
    def test_events_fire_in_time_order(self):
        sched = Scheduler()
        order = []
        sched.call_at(3.0, lambda: order.append(3))
        sched.call_at(1.0, lambda: order.append(1))
        sched.call_at(2.0, lambda: order.append(2))
        sched.run()
        assert order == [1, 2, 3]

    def test_ties_broken_by_insertion_order(self):
        sched = Scheduler()
        order = []
        for tag in ("a", "b", "c"):
            sched.call_at(1.0, order.append, tag)
        sched.run()
        assert order == ["a", "b", "c"]


class TestCancellation:
    def test_cancelled_timer_does_not_fire(self):
        sched = Scheduler()
        fired = []
        timer = sched.call_at(1.0, lambda: fired.append(1))
        timer.cancel()
        sched.run()
        assert fired == []

    def test_pending_excludes_cancelled(self):
        sched = Scheduler()
        keep = sched.call_at(1.0, lambda: None)
        drop = sched.call_at(2.0, lambda: None)
        drop.cancel()
        assert sched.pending == 1
        assert keep is not drop

    def test_double_cancel_is_idempotent(self):
        sched = Scheduler()
        sched.call_at(1.0, lambda: None)
        drop = sched.call_at(2.0, lambda: None)
        drop.cancel()
        drop.cancel()
        assert sched.pending == 1

    def test_cancel_after_dispatch_is_noop(self):
        sched = Scheduler()
        timer = sched.call_at(1.0, lambda: None)
        sched.call_at(2.0, lambda: None)
        sched.run_until(1.0)
        timer.cancel()
        assert sched.pending == 1


class TestCompaction:
    def test_heap_bounded_under_cancel_churn(self):
        """Dead entries must not accumulate indefinitely (the old lazy
        scheme kept every cancelled timer until its time came up)."""
        sched = Scheduler()
        for _ in range(50):
            timers = [sched.call_at(1e9 + i, lambda: None) for i in range(1000)]
            for timer in timers:
                timer.cancel()
        assert sched.pending == 0
        # Without compaction the heap would hold all 50k dead entries;
        # with it, at most one batch survives between compaction runs.
        assert sched.heap_size <= 2000
        assert sched.compactions > 0

    def test_compaction_preserves_order_and_live_timers(self):
        sched = Scheduler(compaction_min=1)
        fired = []
        keep = [sched.call_at(10.0 + i, fired.append, i) for i in range(5)]
        drop = [sched.call_at(5.0, lambda: fired.append("dead")) for _ in range(20)]
        for timer in drop:
            timer.cancel()
        assert sched.compactions > 0
        sched.run()
        assert fired == [0, 1, 2, 3, 4]
        assert all(not timer.cancelled for timer in keep)

    def test_tie_break_survives_compaction(self):
        sched = Scheduler(compaction_min=1)
        fired = []
        for tag in ("a", "b", "c"):
            sched.call_at(1.0, fired.append, tag)
        for _ in range(10):
            sched.call_at(0.5, lambda: None).cancel()
        sched.run()
        assert fired == ["a", "b", "c"]

    def test_small_heaps_not_compacted(self):
        sched = Scheduler()
        for _ in range(Scheduler.COMPACTION_MIN - 1):
            sched.call_at(1.0, lambda: None).cancel()
        assert sched.compactions == 0


class TestStats:
    def test_stats_snapshot_counters(self):
        sched = Scheduler(compaction_min=1)
        for i in range(5):
            sched.call_at(10.0 + i, lambda: None)
        for _ in range(20):
            sched.call_at(5.0, lambda: None).cancel()
        sched.run()
        stats = sched.stats()
        assert stats.dispatched == 5
        # cancelled is cumulative, unlike the internal dead-entry count
        # that compaction resets.
        assert stats.cancelled == 20
        assert stats.compactions == sched.compactions > 0
        assert stats.pending == 0

    def test_peak_heap_tracks_high_water_mark(self):
        sched = Scheduler()
        for i in range(7):
            sched.call_at(1.0 + i, lambda: None)
        sched.run()
        assert sched.stats().peak_heap == 7
        assert sched.stats().heap_size == 0

    def test_compaction_counted_in_stats_under_churn(self):
        sched = Scheduler()
        for _ in range(3):
            timers = [sched.call_at(1e9 + i, lambda: None) for i in range(1000)]
            for timer in timers:
                timer.cancel()
        stats = sched.stats()
        assert stats.compactions > 0
        assert stats.cancelled == 3000
        assert stats.heap_size <= 2000

    def test_profile_hook_records_each_dispatch(self):
        class _Profile:
            def __init__(self):
                self.samples = []

            def record(self, callback, seconds):
                self.samples.append((callback, seconds))

        sched = Scheduler()
        profile = _Profile()
        sched.set_profile(profile)
        sched.call_later(1.0, lambda: None)
        sched.call_later(2.0, lambda: None)
        sched.run()
        assert len(profile.samples) == 2
        assert all(seconds >= 0 for _, seconds in profile.samples)
        sched.set_profile(None)
        sched.call_later(3.0, lambda: None)
        sched.run()
        assert len(profile.samples) == 2


class TestRunUntil:
    def test_runs_only_due_events(self):
        sched = Scheduler()
        fired = []
        sched.call_at(1.0, lambda: fired.append(1))
        sched.call_at(5.0, lambda: fired.append(5))
        count = sched.run_until(2.0)
        assert count == 1
        assert fired == [1]
        assert sched.now == 2.0

    def test_event_exactly_at_boundary_included(self):
        sched = Scheduler()
        fired = []
        sched.call_at(2.0, lambda: fired.append(2))
        sched.run_until(2.0)
        assert fired == [2]

    def test_clock_lands_on_target_with_no_events(self):
        sched = Scheduler()
        sched.run_until(HOUR)
        assert sched.now == HOUR

    def test_consecutive_windows_tile(self):
        sched = Scheduler()
        fired = []
        for t in (0.5, 1.5, 2.5):
            sched.call_at(t, fired.append, t)
        sched.run_until(1.0)
        assert fired == [0.5]
        sched.run_until(2.0)
        assert fired == [0.5, 1.5]

    def test_runaway_loop_detected(self):
        sched = Scheduler()

        def loop():
            sched.call_later(0.0, loop)

        sched.call_later(0.0, loop)
        with pytest.raises(RuntimeError):
            sched.run_until(1.0, max_events=100)

    def test_dispatched_counter(self):
        sched = Scheduler()
        for t in (1.0, 2.0):
            sched.call_at(t, lambda: None)
        sched.run()
        assert sched.dispatched == 2
