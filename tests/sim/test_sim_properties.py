"""Property-based tests (hypothesis) for the simulation core: the
scheduler's ordering guarantees under arbitrary insert/cancel churn,
and the named-RNG registry's determinism and isolation."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.scheduler import Scheduler

# One scheduler operation: (insert? , time , cancel-target).  Cancel
# operations target a previously created timer by (wrapped) index.
ops = st.lists(
    st.tuples(
        st.booleans(),
        st.floats(min_value=0.0, max_value=1_000.0, allow_nan=False),
        st.integers(min_value=0, max_value=200),
    ),
    max_size=200,
)


def _apply_ops(scheduler, operations, trace):
    """Replay an op sequence: inserts schedule a tracing callback,
    cancels hit an arbitrary earlier timer."""
    timers = []
    for index, (insert, time, target) in enumerate(operations):
        if insert or not timers:
            timers.append(
                scheduler.call_at(time, lambda i=index, t=time: trace.append((t, i)))
            )
        else:
            timers[target % len(timers)].cancel()
    return timers


class TestSchedulerOrderingProperties:
    @given(ops)
    def test_dispatch_order_is_total(self, operations):
        """Fired events come out in (time, insertion order): the order
        is total -- no two runs of the same schedule can disagree."""
        scheduler = Scheduler(compaction_min=4)
        trace = []
        _apply_ops(scheduler, operations, trace)
        scheduler.run()
        assert trace == sorted(trace)

    @given(ops)
    def test_identical_op_sequences_identical_traces(self, operations):
        traces = []
        for _ in range(2):
            scheduler = Scheduler(compaction_min=4)
            trace = []
            _apply_ops(scheduler, operations, trace)
            scheduler.run()
            traces.append(trace)
        assert traces[0] == traces[1]

    @given(ops)
    def test_compaction_transparent(self, operations):
        """An eagerly compacting scheduler and a never-compacting one
        dispatch exactly the same trace."""
        traces = []
        for compaction_min in (1, 10**9):
            scheduler = Scheduler(compaction_min=compaction_min)
            trace = []
            _apply_ops(scheduler, operations, trace)
            scheduler.run()
            traces.append(trace)
        assert traces[0] == traces[1]

    @given(ops)
    def test_cancelled_never_fire_live_always_fire(self, operations):
        scheduler = Scheduler(compaction_min=4)
        trace = []
        timers = _apply_ops(scheduler, operations, trace)
        live = sum(1 for timer in timers if not timer.cancelled)
        scheduler.run()
        assert len(trace) == live

    @given(ops, st.integers(min_value=1, max_value=64))
    def test_heap_stays_bounded(self, operations, compaction_min):
        """Physical heap size never exceeds live entries plus the
        compaction slack (2x live + threshold)."""
        scheduler = Scheduler(compaction_min=compaction_min)
        trace = []
        for index, (insert, time, target) in enumerate(operations):
            if insert or scheduler.pending == 0:
                scheduler.call_at(time, trace.append, index)
            # Cancel churn: drop a fresh far-future timer immediately.
            scheduler.call_at(time + 10_000.0, lambda: None).cancel()
            assert scheduler.heap_size <= 2 * scheduler.pending + compaction_min + 1


class TestRngRegistryProperties:
    @given(st.integers(min_value=0, max_value=2**63), st.text(min_size=1, max_size=30))
    def test_derive_seed_deterministic(self, master, name):
        assert derive_seed(master, name) == derive_seed(master, name)
        assert 0 <= derive_seed(master, name) < 2**64

    @given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
    def test_identical_seeds_identical_streams(self, master, name):
        a = RngRegistry(master).stream(name)
        b = RngRegistry(master).stream(name)
        assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]

    @given(st.integers(min_value=0, max_value=2**31))
    def test_stream_isolation(self, master):
        """Draws on one named stream do not perturb another."""
        registry_a = RngRegistry(master)
        registry_b = RngRegistry(master)
        registry_a.stream("noise").random()  # extra draws on a sibling
        values_a = [registry_a.stream("target").random() for _ in range(10)]
        values_b = [registry_b.stream("target").random() for _ in range(10)]
        assert values_a == values_b

    @given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=0, max_value=2**31))
    def test_identical_seeds_identical_event_traces(self, master, unused):
        """A small self-scheduling simulation driven entirely by a
        registry stream replays bit-identically from the same seed."""
        traces = []
        for _ in range(2):
            registry = RngRegistry(master)
            rng = registry.stream("sim")
            scheduler = Scheduler()
            trace = []

            def tick(depth=0):
                trace.append((scheduler.now, depth))
                if depth < 5:
                    scheduler.call_later(rng.uniform(0.1, 10.0), tick, depth + 1)

            for _ in range(3):
                scheduler.call_later(rng.uniform(0.0, 5.0), tick)
            scheduler.run()
            traces.append(trace)
        assert traces[0] == traces[1]
