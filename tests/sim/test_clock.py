"""Unit tests for the virtual clock."""

import pytest

from repro.sim.clock import DAY, HOUR, MINUTE, Clock, format_time


class TestClock:
    def test_starts_at_zero_by_default(self):
        assert Clock().now == 0.0

    def test_custom_start(self):
        assert Clock(start=5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            Clock(start=-1.0)

    def test_advance_moves_forward(self):
        clock = Clock()
        clock.advance(10.0)
        assert clock.now == 10.0

    def test_advance_to_same_time_allowed(self):
        clock = Clock(start=3.0)
        clock.advance(3.0)
        assert clock.now == 3.0

    def test_advance_backwards_rejected(self):
        clock = Clock(start=10.0)
        with pytest.raises(ValueError):
            clock.advance(9.999)


class TestTimeConstants:
    def test_units_compose(self):
        assert MINUTE == 60.0
        assert HOUR == 60 * MINUTE
        assert DAY == 24 * HOUR


class TestFormatTime:
    def test_zero(self):
        assert format_time(0) == "00:00:00"

    def test_mixed(self):
        assert format_time(3661) == "01:01:01"

    def test_past_one_day_keeps_counting_hours(self):
        assert format_time(DAY + HOUR) == "25:00:00"

    def test_fractional_seconds_truncated(self):
        assert format_time(59.9) == "00:00:59"
