"""Unit tests for the event log."""

import pytest

from repro.sim.events import Event, EventLog


def make_log():
    log = EventLog()
    log.record(1.0, "a.request", source="s1", target="t1", size=3)
    log.record(2.0, "a.request", source="s2", target="t1")
    log.record(3.0, "b.reply", source="t1", target="s1")
    return log


class TestAppend:
    def test_record_builds_event(self):
        log = EventLog()
        event = log.record(1.0, "x", source="a", target="b", foo=1)
        assert event.kind == "x"
        assert event.data == {"foo": 1}
        assert len(log) == 1

    def test_out_of_order_append_rejected(self):
        log = EventLog()
        log.record(2.0, "x")
        with pytest.raises(ValueError):
            log.append(Event(time=1.0, kind="y"))

    def test_equal_time_append_allowed(self):
        log = EventLog()
        log.record(2.0, "x")
        log.record(2.0, "y")
        assert len(log) == 2


class TestFilter:
    def test_by_kind(self):
        assert len(make_log().filter(kind="a.request")) == 2

    def test_by_source_and_target(self):
        hits = make_log().filter(source="s1", target="t1")
        assert len(hits) == 1
        assert hits[0].time == 1.0

    def test_time_window_is_half_open(self):
        log = make_log()
        assert [e.time for e in log.filter(since=1.0, until=3.0)] == [1.0, 2.0]

    def test_predicate(self):
        hits = make_log().filter(predicate=lambda e: e.data.get("size") == 3)
        assert len(hits) == 1

    def test_kinds_histogram(self):
        assert make_log().kinds() == {"a.request": 2, "b.reply": 1}

    def test_indexing_and_iteration(self):
        log = make_log()
        assert log[0].time == 1.0
        assert [e.kind for e in log] == ["a.request", "a.request", "b.reply"]
